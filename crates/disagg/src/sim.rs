//! The disaggregated-serving driver: prefill pool → KV transfer →
//! decode pool, with the colocated baseline as the degenerate case.
//!
//! Mirrors the colocated drivers' event loop and RNG derivation exactly
//! (same root constants, same arrival process, same per-session forks —
//! all via [`agentsim_session`]), so a disaggregated run and a colocated
//! run at the same seed differ *only* in serving topology — the what-if
//! experiments compare nothing else. The session state machine itself is
//! the shared [`SessionRunner`]; only the two-pool call lifecycle
//! (prefill leg, transfer, decode leg) lives here.
//!
//! ## Pool membership and autoscaling
//!
//! Replicas live in one flat vector (initial prefill pool first, then
//! the decode pool); the *pools* are member lists over global replica
//! indices. With autoscaling disabled the lists never change and the
//! driver is bit-identical to the static-split code path. With a
//! [`PoolController`] installed, the driver snapshots pool demand after
//! every event; when the controller requests a flip the least-loaded
//! source-pool replica leaves its member list and drains — it refuses
//! new submissions, finishes or migrates in-flight work, and waits for
//! committed inbound KV transfers to land — then pays the
//! [`agentsim_gpu::FlipCostModel`] gap and joins the other pool. One
//! flip runs at a time, and a pool is never drained below one replica.
//!
//! ## Coordinator admission gate
//!
//! With [`DisaggConfig::max_inflight_prefill`] set, new LLM ops queue at
//! the coordinator until prefill-leg capacity frees, ordered by the
//! configured [`QueueDiscipline`]. Under
//! [`QueueDiscipline::DeadlineDrop`] a session whose deadline has passed
//! by the time it reaches the head is shed *before* costing any GPU
//! work — the one overload mechanism this driver has. Everything lives
//! on the coordinator thread (no engine cancellation, no timers), so the
//! parallel path replays it bit-exactly; with the gate unset the queue
//! is never touched and the driver is bit-identical to the pre-gate
//! code path.

mod par;

use std::collections::{HashMap, VecDeque};

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::{Engine, EngineObserver, EngineRole, LlmCompletion, MigratedRequest, RequestId};
use agentsim_metrics::Samples;
use agentsim_session::{
    seeds, Arrival, ArrivalProcess, CallDone, LlmSubmit, QueueDiscipline, SessionCmd,
    SessionRunner, ShardPool, ToolRng,
};
use agentsim_simkit::{EventQueue, SimDuration, SimRng, SimTime};
use agentsim_tools::ToolExecutor;
use agentsim_workloads::{ShareGptGenerator, TaskGenerator};

use crate::autoscale::{FlipDirection, PoolController};
use crate::config::{DisaggConfig, DisaggWorkload, PoolRouting};
use crate::report::{CallRecord, DisaggReport, FlipRecord, LinkStats};
use crate::transfer::TransferScheduler;

#[derive(Debug)]
enum Event {
    Arrival(Arrival),
    /// Replica `r` (global index) finishes its in-progress engine step.
    Step(usize),
    TransferDone(u64),
    ToolsDone(u64),
    /// Replica `r` finishes its role-flip reconfiguration gap.
    FlipDone(usize),
}

/// One call's record under construction (prefill leg, then optionally a
/// transfer and a decode leg). Replica indices are global.
struct CallState {
    session: u64,
    /// The call's index within its session's current LLM op.
    seq: u32,
    prefill_replica: usize,
    decode_replica: Option<usize>,
    decode_submitted: Option<SimTime>,
    transfer_wait: SimDuration,
    /// Prefill leg, captured at migration time (`None` until then; local
    /// completions fill the record directly). Doubles as the completion
    /// discriminator: a finished request whose call has a migration
    /// finished its *decode* leg.
    migration: Option<agentsim_llm::MigratedRequest>,
}

/// One LLM op parked at the coordinator admission gate, waiting for
/// prefill-leg capacity. Whole ops queue together, so a dropped session
/// provably has zero calls in flight.
struct PendingOp {
    session: u64,
    /// The session's absolute deadline (set iff the config has one).
    deadline: Option<SimTime>,
    priority: u32,
    calls: Vec<LlmSubmit>,
}

/// A role flip in progress: the victim has left its pool's member list
/// and is draining (or, once `drained` is set, sitting out the
/// reconfiguration gap until its [`Event::FlipDone`]).
struct FlipInProgress {
    replica: usize,
    direction: FlipDirection,
    requested: SimTime,
    drained: Option<SimTime>,
}

/// The disaggregated serving simulator. Build with [`DisaggSim::new`],
/// consume with [`DisaggSim::run`].
pub struct DisaggSim {
    config: DisaggConfig,
    /// Every replica: the initial prefill pool at `0..P`, the initial
    /// decode pool at `P..P+D`. Autoscaling moves replicas between the
    /// member lists below; the vector itself never changes.
    replicas: Vec<Engine>,
    /// Live prefill-pool members (global indices, ascending).
    prefill_members: Vec<usize>,
    /// Live decode-pool members (global indices, ascending).
    decode_members: Vec<usize>,
    /// Size of the initial prefill pool (for observer attachment and
    /// reporting).
    initial_prefill: usize,
    controller: Option<Box<dyn PoolController>>,
    flip: Option<FlipInProgress>,
    flips: Vec<FlipRecord>,
    transfers: TransferScheduler,
    /// Transfer id → call id.
    transfer_owner: HashMap<u64, u64>,
    tools: ToolExecutor,
    queue: EventQueue<Event>,
    client: Box<dyn ArrivalProcess>,
    sessions: Vec<Option<SessionRunner>>,
    calls: Vec<CallState>,
    finished_calls: Vec<CallRecord>,
    /// `(global replica, engine request id)` → call id, for both legs
    /// (engine request ids are per-engine and never reused, so a key is
    /// never live twice).
    owner: HashMap<(usize, RequestId), u64>,
    root_rng: SimRng,
    rr_prefill: usize,
    rr_decode: usize,
    latencies: Vec<f64>,
    completed: u64,
    solved: u64,
    last_finish: SimTime,
    /// Ops parked at the admission gate (always empty with the gate
    /// unset).
    dispatch: VecDeque<PendingOp>,
    /// Calls submitted to the prefill pool whose prefill leg hasn't
    /// finished (tracked whether or not the gate is active).
    inflight_prefill: u64,
    /// Per-session absolute deadline, refreshed at each arrival.
    session_deadline: Vec<Option<SimTime>>,
    /// Sessions shed at the dispatch queue (their turn never resolves).
    abandoned: u64,
    /// Ops removed from the dispatch queue unserved (equals `abandoned`
    /// here: a session queues at most one op at a time).
    dropped: u64,
    /// Reused completion buffer for [`Engine::complete_step_into`] — the
    /// step handler is the hot path and must not allocate per step.
    step_scratch: Vec<LlmCompletion>,
    /// Reused migration buffer for [`Engine::take_migrations_into`].
    migration_scratch: Vec<MigratedRequest>,
}

impl std::fmt::Debug for DisaggSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DisaggSim")
            .field("prefill_members", &self.prefill_members.len())
            .field("decode_members", &self.decode_members.len())
            .field("qps", &self.config.qps)
            .field("flips", &self.flips.len())
            .finish_non_exhaustive()
    }
}

impl DisaggSim {
    /// Builds the simulator (the first arrivals are scheduled; the rest
    /// chain lazily as the run progresses).
    ///
    /// # Panics
    ///
    /// Panics when the configuration enables autoscaling in colocated
    /// mode — a role-free pool has nothing to flip.
    pub fn new(config: DisaggConfig) -> Self {
        config.validate_overload();
        let prefill_role = if config.is_colocated() {
            EngineRole::Colocated
        } else {
            EngineRole::Prefill
        };
        let p = config.prefill_replicas as usize;
        let d = config.decode_replicas as usize;
        let mut replicas: Vec<Engine> = (0..p)
            .map(|_| Engine::new(config.prefill_engine.clone().with_role(prefill_role)))
            .collect();
        replicas.extend(
            (0..d).map(|_| Engine::new(config.decode_engine.clone().with_role(EngineRole::Decode))),
        );
        let controller = config.autoscale.build();
        assert!(
            controller.is_none() || !config.is_colocated(),
            "pool autoscaling requires a decode pool (colocated mode has no roles to flip)"
        );
        // A migration cannot be split finer than the model's layers:
        // clamp the chunk count to the prefill model's depth.
        let chunks = config
            .transfer_chunks
            .min(config.prefill_engine.cluster.model.layers.max(1));
        let transfers = TransferScheduler::new(config.link.clone(), p + d).with_chunks(chunks);
        // Same root/arrival derivation as the colocated open-loop driver:
        // identical seeds ⇒ identical arrival processes.
        let root_rng = SimRng::seed_from(config.seed ^ seeds::SERVING_ROOT);
        let mut client = config.client.build(
            config.qps,
            config.num_requests,
            root_rng.fork(seeds::ARRIVALS),
        );
        let mut queue = EventQueue::new();
        for a in client.initial() {
            queue.push(a.at, Event::Arrival(a));
        }
        let session_slots = config.client.sessions(config.num_requests);
        let sessions = (0..session_slots).map(|_| None).collect();
        DisaggSim {
            replicas,
            prefill_members: (0..p).collect(),
            decode_members: (p..p + d).collect(),
            initial_prefill: p,
            controller,
            flip: None,
            flips: Vec::new(),
            transfers,
            transfer_owner: HashMap::new(),
            tools: ToolExecutor::new(),
            queue,
            client,
            sessions,
            calls: Vec::new(),
            finished_calls: Vec::new(),
            owner: HashMap::new(),
            root_rng,
            rr_prefill: 0,
            rr_decode: 0,
            latencies: Vec::new(),
            completed: 0,
            solved: 0,
            last_finish: SimTime::ZERO,
            dispatch: VecDeque::new(),
            inflight_prefill: 0,
            session_deadline: vec![None; session_slots as usize],
            abandoned: 0,
            dropped: 0,
            step_scratch: Vec::new(),
            migration_scratch: Vec::new(),
            config,
        }
    }

    /// Replaces the engine observer of initial-prefill-pool replica
    /// `replica` (for span recorders or invariant checkers).
    pub fn set_prefill_observer(&mut self, replica: usize, observer: Box<dyn EngineObserver>) {
        assert!(replica < self.initial_prefill, "not a prefill replica");
        self.replicas[replica].set_observer(observer);
    }

    /// Replaces the engine observer of initial-decode-pool replica
    /// `replica`.
    pub fn set_decode_observer(&mut self, replica: usize, observer: Box<dyn EngineObserver>) {
        self.replicas[self.initial_prefill + replica].set_observer(observer);
    }

    /// Replaces replica `replica`'s engine observer, by global index
    /// (under autoscaling the pool a replica serves varies over the run;
    /// the observer stream carries the role timeline via
    /// [`agentsim_llm::EngineEvent::RoleChanged`]).
    pub fn set_replica_observer(&mut self, replica: usize, observer: Box<dyn EngineObserver>) {
        self.replicas[replica].set_observer(observer);
    }

    /// Initial pool sizes as `(prefill, decode)` (for observer
    /// attachment; autoscaling changes live membership but not the
    /// replica count).
    pub fn pool_sizes(&self) -> (usize, usize) {
        (
            self.initial_prefill,
            self.replicas.len() - self.initial_prefill,
        )
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> DisaggReport {
        let threads = (self.config.threads as usize).min(self.replicas.len());
        if threads > 1 {
            return self.run_parallel(threads);
        }
        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::Arrival(a) => self.on_arrival(None, a, now),
                Event::Step(r) => self.on_step(r, now),
                Event::TransferDone(tid) => self.on_transfer_done(None, tid, now),
                Event::ToolsDone(sid) => {
                    let cmd = self.sessions[sid as usize]
                        .as_mut()
                        .expect("live session")
                        .on_tools_done(&self.tools, now);
                    self.exec(None, sid, cmd, now);
                }
                Event::FlipDone(r) => self.on_flip_done(None, r, now),
            }
            self.drain_dispatch(None, now);
            self.maybe_autoscale(None, now);
            self.kick_all(now);
        }
        let expected = self.config.client.total_turns(self.config.num_requests);
        assert_eq!(
            self.completed + self.abandoned,
            expected,
            "every turn must resolve exactly once"
        );
        self.check_end_state();
        self.into_report()
    }

    /// End-of-run invariants shared by the sequential and parallel
    /// drivers (the latter checks after the pool hands the engines back).
    fn check_end_state(&self) {
        assert_eq!(self.transfers.outstanding(), 0, "no transfer left behind");
        assert!(self.flip.is_none(), "no flip left in progress");
        assert!(self.dispatch.is_empty(), "no op left at the gate");
        assert_eq!(self.inflight_prefill, 0, "prefill-leg accounting leaked");
        for e in &self.replicas {
            assert_eq!(e.kv().live_sequences(), 0, "KV sequence leaked");
            e.kv().check_invariants().expect("KV invariants at run end");
        }
    }

    fn on_arrival(&mut self, pool: Option<&mut ShardPool>, a: Arrival, now: SimTime) {
        // Chain the next arrival first, so it precedes any event this
        // one schedules at the same instant.
        if let Some(next) = self.client.after_arrival(now) {
            self.queue.push(next.at, Event::Arrival(next));
        }
        let (runner, cmd) = match self.config.workload {
            DisaggWorkload::Chatbot => self.start_chatbot(a.turn, now),
            DisaggWorkload::Agent {
                kind,
                benchmark,
                config,
            } => self.start_agent(a.turn, now, kind, benchmark, config),
            DisaggWorkload::Mixed {
                agent_fraction,
                kind,
                benchmark,
                config,
            } => {
                // Same per-turn class draw as the colocated driver's
                // mixed workload: identical seeds classify identically.
                let mut class_rng = self.root_rng.fork(a.turn ^ seeds::MIXED_CLASS);
                if class_rng.chance(agent_fraction) {
                    self.start_agent(a.turn, now, kind, benchmark, config)
                } else {
                    self.start_chatbot(a.turn, now)
                }
            }
        };
        let slot = &mut self.sessions[a.session as usize];
        assert!(slot.is_none(), "session {} already live", a.session);
        *slot = Some(runner);
        self.session_deadline[a.session as usize] = self.config.deadline.map(|d| now + d);
        self.exec(pool, a.session, cmd, now);
    }

    fn start_chatbot(&mut self, turn: u64, now: SimTime) -> (SessionRunner, SessionCmd) {
        let query = ShareGptGenerator::new(self.config.seed).query(turn);
        SessionRunner::chatbot(
            query.prompt,
            query.output_tokens,
            query.gen_seed,
            turn,
            self.root_rng.fork(turn ^ seeds::CHATBOT_SESSION),
            now,
        )
    }

    fn start_agent(
        &mut self,
        turn: u64,
        now: SimTime,
        kind: AgentKind,
        benchmark: agentsim_workloads::Benchmark,
        config: AgentConfig,
    ) -> (SessionRunner, SessionCmd) {
        let task = TaskGenerator::new(benchmark, self.config.seed).task(turn);
        SessionRunner::agent(
            kind,
            &task,
            config,
            self.root_rng.fork(turn ^ seeds::AGENT_SESSION),
            ToolRng::ForkByTime,
            &self.tools,
            now,
        )
    }

    /// Work a routing policy sees on `replica`: the pool mirror in
    /// parallel runs, the engine itself otherwise. Both count
    /// `queued + running`, and the mirror is delta-exact, so the two
    /// sources agree at every routing decision.
    fn replica_load(&self, pool: Option<&ShardPool>, replica: usize) -> usize {
        match pool {
            Some(pool) => pool.load(replica),
            None => self.replicas[replica].queue_len() + self.replicas[replica].running_len(),
        }
    }

    fn route_prefill(&mut self, pool: Option<&ShardPool>) -> usize {
        let members = &self.prefill_members;
        match self.config.prefill_routing {
            PoolRouting::RoundRobin => {
                let k = self.rr_prefill % members.len();
                self.rr_prefill = (k + 1) % members.len();
                members[k]
            }
            PoolRouting::LeastLoaded => members
                .iter()
                .copied()
                .min_by_key(|&r| self.replica_load(pool, r))
                .expect("non-empty prefill pool"),
        }
    }

    fn route_decode(&mut self, pool: Option<&ShardPool>) -> usize {
        let members = &self.decode_members;
        match self.config.decode_routing {
            PoolRouting::RoundRobin => {
                let k = self.rr_decode % members.len();
                self.rr_decode = (k + 1) % members.len();
                members[k]
            }
            PoolRouting::LeastLoaded => members
                .iter()
                .copied()
                .min_by_key(|&r| self.replica_load(pool, r) + self.transfers.in_flight(r) as usize)
                .expect("non-empty decode pool"),
        }
    }

    /// Executes a session command against the two-pool topology.
    fn exec(&mut self, pool: Option<&mut ShardPool>, sid: u64, cmd: SessionCmd, now: SimTime) {
        match cmd {
            SessionCmd::Llm(op) => {
                if self.config.max_inflight_prefill.is_none() {
                    // No gate: submit immediately, bit-identical to the
                    // pre-gate driver.
                    self.submit_calls(pool, sid, op.calls, op.priority, now);
                } else {
                    let pending = PendingOp {
                        session: sid,
                        deadline: self.session_deadline[sid as usize],
                        priority: op.priority,
                        calls: op.calls,
                    };
                    match self.config.discipline {
                        QueueDiscipline::Lifo => self.dispatch.push_front(pending),
                        _ => self.dispatch.push_back(pending),
                    }
                    // The event loop drains once per event; ops enqueued
                    // by this event dispatch before any later event.
                }
            }
            SessionCmd::Tools { wake } => {
                self.queue.push(wake, Event::ToolsDone(sid));
            }
            SessionCmd::Finish(outcome) => {
                let runner = self.sessions[sid as usize]
                    .take()
                    .expect("live session finishing");
                self.latencies.push(runner.trace().e2e().as_secs_f64());
                self.completed += 1;
                self.solved += outcome.solved as u64;
                self.last_finish = self.last_finish.max(now);
                if let Some(next) = self.client.after_finish(sid, now) {
                    self.queue.push(next.at, Event::Arrival(next));
                }
            }
        }
    }

    /// Routes one op's calls to the prefill pool. Shared by the direct
    /// (gate-off) path and the dispatch queue.
    fn submit_calls(
        &mut self,
        mut pool: Option<&mut ShardPool>,
        sid: u64,
        calls: Vec<LlmSubmit>,
        priority: u32,
        now: SimTime,
    ) {
        for (seq, c) in calls.into_iter().enumerate() {
            let replica = self.route_prefill(pool.as_deref());
            let id = match pool.as_deref_mut() {
                Some(pool) => {
                    pool.submit(replica, now, c.prompt, c.out_tokens, c.gen_seed, priority)
                }
                None => self.replicas[replica].submit_with_priority(
                    now,
                    c.prompt,
                    c.out_tokens,
                    c.gen_seed,
                    priority,
                ),
            };
            let call = self.calls.len() as u64;
            self.calls.push(CallState {
                session: sid,
                seq: seq as u32,
                prefill_replica: replica,
                decode_replica: None,
                decode_submitted: None,
                transfer_wait: SimDuration::ZERO,
                migration: None,
            });
            self.owner.insert((replica, id), call);
            self.inflight_prefill += 1;
        }
    }

    /// Admits parked ops while prefill-leg capacity lasts. Runs once per
    /// event in both drivers (coordinator state only, so the parallel
    /// path replays it bit-exactly); a no-op with the gate unset.
    fn drain_dispatch(&mut self, mut pool: Option<&mut ShardPool>, now: SimTime) {
        let Some(limit) = self.config.max_inflight_prefill else {
            return;
        };
        let limit = limit as u64;
        while let Some(op) = self.select_dispatch(now) {
            // Head-of-line exception: an op wider than the whole gate
            // still runs alone rather than deadlocking its session.
            let admit = self.inflight_prefill == 0
                || self.inflight_prefill + op.calls.len() as u64 <= limit;
            if !admit {
                self.dispatch.push_front(op);
                break;
            }
            self.submit_calls(pool.as_deref_mut(), op.session, op.calls, op.priority, now);
        }
    }

    /// Picks the next op per the configured discipline.
    /// [`QueueDiscipline::DeadlineDrop`] selects earliest-deadline-first
    /// (first minimum, so ties keep FIFO order) and sheds every expired
    /// op it surfaces before returning a live one.
    fn select_dispatch(&mut self, now: SimTime) -> Option<PendingOp> {
        match self.config.discipline {
            QueueDiscipline::Fifo | QueueDiscipline::Lifo => self.dispatch.pop_front(),
            QueueDiscipline::DeadlineDrop => loop {
                let deadline_of = |op: &PendingOp| op.deadline.expect("DeadlineDrop has deadlines");
                let idx =
                    (0..self.dispatch.len()).min_by_key(|&i| deadline_of(&self.dispatch[i]))?;
                let op = self.dispatch.remove(idx).expect("index in range");
                if deadline_of(&op) <= now {
                    self.drop_op(op, now);
                    continue;
                }
                return Some(op);
            },
        }
    }

    /// Sheds one parked op whose deadline passed: full session teardown.
    /// The op queued whole, so the session has zero calls in flight, no
    /// pending tool wake, and no transfer — taking the runner is clean.
    fn drop_op(&mut self, op: PendingOp, now: SimTime) {
        let taken = self.sessions[op.session as usize].take();
        assert!(taken.is_some(), "dropped session was live");
        self.dropped += 1;
        self.abandoned += 1;
        self.last_finish = self.last_finish.max(now);
        // The client still observes the turn ending (a closed-loop
        // population re-issues from here).
        if let Some(next) = self.client.after_finish(op.session, now) {
            self.queue.push(next.at, Event::Arrival(next));
        }
    }

    fn on_step(&mut self, replica: usize, now: SimTime) {
        // Completions: a call with a migration finished its decode leg;
        // one without finished locally (colocated mode, single-token
        // outputs, or any call on a colocated-role replica).
        let mut completions = std::mem::take(&mut self.step_scratch);
        self.replicas[replica].complete_step_into(now, &mut completions);
        for completion in completions.drain(..) {
            self.finish_completion(None, replica, &completion, now);
        }
        self.step_scratch = completions;
        // Migrations: first token produced, KV ready to move.
        let mut migrations = std::mem::take(&mut self.migration_scratch);
        self.replicas[replica].take_migrations_into(&mut migrations);
        for migration in migrations.drain(..) {
            self.start_migration(None, replica, migration, now);
        }
        self.migration_scratch = migrations;
    }

    /// Routes one finished engine request to the right completion path.
    fn finish_completion(
        &mut self,
        pool: Option<&mut ShardPool>,
        replica: usize,
        completion: &LlmCompletion,
        now: SimTime,
    ) {
        let call = self
            .owner
            .remove(&(replica, completion.id))
            .expect("completion belongs to a call");
        if self.calls[call as usize].migration.is_some() {
            self.finish_migrated_call(pool, call, completion, now);
        } else {
            self.finish_local_call(pool, call, completion, now);
        }
    }

    /// Picks a decode replica for a freshly migrated request and puts its
    /// KV on the wire.
    fn start_migration(
        &mut self,
        pool: Option<&ShardPool>,
        replica: usize,
        migration: MigratedRequest,
        now: SimTime,
    ) {
        let call = self
            .owner
            .remove(&(replica, migration.id))
            .expect("migration belongs to a call");
        // The prefill leg is over; the gate sees its capacity back even
        // while the KV is on the wire.
        self.inflight_prefill -= 1;
        let dst = self.route_decode(pool);
        let state = &mut self.calls[call as usize];
        state.decode_replica = Some(dst);
        let (tid, arrival) = self.transfers.schedule(now, dst, migration);
        self.transfer_owner.insert(tid, call);
        self.queue.push(arrival, Event::TransferDone(tid));
    }

    fn on_transfer_done(&mut self, pool: Option<&mut ShardPool>, tid: u64, now: SimTime) {
        let call = self
            .transfer_owner
            .remove(&tid)
            .expect("transfer belongs to a call");
        let pt = self.transfers.complete(tid);
        // A draining destination still accepts this: the KV was committed
        // to it before the drain began, and a flip waits for it to land.
        let id = match pool {
            Some(pool) => pool.submit_prefilled(pt.dst, now, pt.migration.clone()),
            None => self.replicas[pt.dst].submit_prefilled(now, &pt.migration),
        };
        let state = &mut self.calls[call as usize];
        state.decode_submitted = Some(now);
        state.transfer_wait = pt.transfer.wait();
        state.migration = Some(pt.migration);
        self.owner.insert((pt.dst, id), call);
    }

    /// A call that completed without leaving the prefill pool.
    fn finish_local_call(
        &mut self,
        pool: Option<&mut ShardPool>,
        call: u64,
        completion: &LlmCompletion,
        now: SimTime,
    ) {
        self.inflight_prefill -= 1;
        let state = &self.calls[call as usize];
        // First token lands at the end of the prefill phase; clamp for
        // single-token calls whose first token is also the last.
        let released = (completion.started + completion.prefill_time).min(completion.finished);
        self.finished_calls.push(CallRecord {
            session: state.session,
            prefill_replica: state.prefill_replica as u32,
            decode_replica: None,
            arrived: completion.arrived,
            prefill_started: completion.started,
            released,
            decode_submitted: None,
            decode_started: None,
            finished: completion.finished,
            prompt_tokens: completion.prompt_tokens,
            cached_tokens: completion.cached_tokens,
            output_tokens: completion.output_tokens,
            prefill_time: completion.prefill_time,
            decode_time: completion.decode_time,
            transfer_wait: SimDuration::ZERO,
            kv_bytes: 0,
            preemptions: completion.preemptions,
        });
        self.finish_call_in_session(pool, call, completion.output_tokens, now);
    }

    /// A call that prefilled, migrated, and decoded to completion.
    fn finish_migrated_call(
        &mut self,
        pool: Option<&mut ShardPool>,
        call: u64,
        completion: &LlmCompletion,
        now: SimTime,
    ) {
        let state = &self.calls[call as usize];
        let m = state.migration.as_ref().expect("migrated call has a leg");
        debug_assert!(
            completion.prefill_time.is_zero(),
            "decode pools never run prefill steps"
        );
        self.finished_calls.push(CallRecord {
            session: state.session,
            prefill_replica: state.prefill_replica as u32,
            decode_replica: state.decode_replica.map(|d| d as u32),
            arrived: m.arrived,
            prefill_started: m.started,
            released: m.released,
            decode_submitted: state.decode_submitted,
            decode_started: Some(completion.started),
            finished: completion.finished,
            prompt_tokens: m.prompt_tokens,
            cached_tokens: m.cached_tokens,
            output_tokens: completion.output_tokens,
            prefill_time: m.prefill_time,
            decode_time: completion.decode_time,
            transfer_wait: state.transfer_wait,
            kv_bytes: m.kv_bytes,
            preemptions: m.preemptions + completion.preemptions,
        });
        self.finish_call_in_session(pool, call, completion.output_tokens, now);
    }

    /// Session bookkeeping shared by both completion paths. The session
    /// level only needs the output-token count — per-leg engine records
    /// are already stitched into [`CallRecord`]s.
    fn finish_call_in_session(
        &mut self,
        pool: Option<&mut ShardPool>,
        call: u64,
        output_tokens: u32,
        now: SimTime,
    ) {
        let state = &self.calls[call as usize];
        let (sid, seq) = (state.session, state.seq);
        let cmd = self.sessions[sid as usize]
            .as_mut()
            .expect("live session")
            .on_call_done(seq, CallDone::tokens_only(output_tokens), &self.tools, now);
        if let Some(cmd) = cmd {
            self.exec(pool, sid, cmd, now);
        }
    }

    /// Advances the autoscaler: finishes detecting a drain in progress,
    /// or asks the controller whether to start a new flip. No-op (and
    /// bit-exactly free) with autoscaling disabled.
    ///
    /// In parallel runs the caller must have resolved every in-flight
    /// kick before the controller observes (the waiting/running *split*
    /// is only mirror-exact once pending admissions have landed); the
    /// drain check needs no such sync — `load` and `busy` are delta-exact
    /// at all times.
    fn maybe_autoscale(&mut self, mut pool: Option<&mut ShardPool>, now: SimTime) {
        if self.flip.is_none() && self.controller.is_some() {
            let obs = self.observation(pool.as_deref(), now);
            let decision = self.controller.as_mut().expect("controller").observe(&obs);
            if let Some(direction) = decision {
                self.start_flip(pool.as_deref_mut(), direction, now);
            }
        }
        // Drain detection runs in the same pass, so a flip of an
        // already-idle replica completes without waiting for another
        // event.
        if let Some(flip) = &self.flip {
            if flip.drained.is_none() {
                let r = flip.replica;
                let idle = match pool.as_deref() {
                    Some(pool) => pool.load(r) == 0 && !pool.busy(r),
                    None => !self.replicas[r].has_work(),
                };
                if idle && self.transfers.in_flight(r) == 0 {
                    self.flip.as_mut().expect("flip in progress").drained = Some(now);
                    let at = now + self.config.flip_cost.flip_time();
                    self.queue.push(at, Event::FlipDone(r));
                }
            }
        }
    }

    /// Snapshot of live pool demand for the controller.
    fn observation(
        &self,
        pool: Option<&ShardPool>,
        now: SimTime,
    ) -> crate::autoscale::PoolObservation {
        let queue_of = |r: usize| match pool {
            Some(pool) => pool.queue_len(r),
            None => self.replicas[r].queue_len(),
        };
        let running_of = |r: usize| match pool {
            Some(pool) => pool.running_len(r),
            None => self.replicas[r].running_len(),
        };
        let (mut pq, mut pr) = (0usize, 0usize);
        for &r in &self.prefill_members {
            pq += queue_of(r);
            pr += running_of(r);
        }
        let (mut dq, mut dr, mut tif) = (0usize, 0usize, 0usize);
        for &r in &self.decode_members {
            dq += queue_of(r);
            dr += running_of(r);
            tif += self.transfers.in_flight(r) as usize;
        }
        crate::autoscale::PoolObservation {
            now,
            prefill_replicas: self.prefill_members.len(),
            decode_replicas: self.decode_members.len(),
            flip_in_progress: self.flip.is_some(),
            prefill_queue: pq,
            prefill_running: pr,
            decode_queue: dq,
            decode_running: dr,
            transfers_in_flight: tif,
        }
    }

    /// Starts draining the least-loaded source-pool replica toward the
    /// other pool. Infeasible requests (source pool at one replica) are
    /// dropped, deterministically.
    fn start_flip(&mut self, pool: Option<&mut ShardPool>, direction: FlipDirection, now: SimTime) {
        let source = match direction {
            FlipDirection::PrefillToDecode => &self.prefill_members,
            FlipDirection::DecodeToPrefill => &self.decode_members,
        };
        if source.len() <= 1 {
            return;
        }
        // Least-loaded victim drains fastest; ties break to the lowest
        // index so the choice is deterministic.
        let victim = source
            .iter()
            .copied()
            .min_by_key(|&r| {
                (
                    self.replica_load(pool.as_deref(), r) + self.transfers.in_flight(r) as usize,
                    r,
                )
            })
            .expect("non-empty source pool");
        match direction {
            FlipDirection::PrefillToDecode => self.prefill_members.retain(|&r| r != victim),
            FlipDirection::DecodeToPrefill => self.decode_members.retain(|&r| r != victim),
        }
        match pool {
            Some(pool) => pool.begin_drain(victim),
            None => self.replicas[victim].begin_drain(),
        }
        self.flip = Some(FlipInProgress {
            replica: victim,
            direction,
            requested: now,
            drained: None,
        });
    }

    /// The reconfiguration gap ended: the drained replica joins the
    /// target pool in its new role.
    fn on_flip_done(&mut self, pool: Option<&mut ShardPool>, replica: usize, now: SimTime) {
        let flip = self.flip.take().expect("flip completion without a flip");
        assert_eq!(flip.replica, replica, "flip completion for wrong replica");
        let (role, members) = match flip.direction {
            FlipDirection::PrefillToDecode => (EngineRole::Decode, &mut self.decode_members),
            FlipDirection::DecodeToPrefill => (EngineRole::Prefill, &mut self.prefill_members),
        };
        match pool {
            Some(pool) => pool.finish_drain(replica, now, role),
            None => self.replicas[replica].finish_drain(now, role),
        }
        let pos = members.partition_point(|&r| r < replica);
        members.insert(pos, replica);
        self.flips.push(FlipRecord {
            replica: replica as u32,
            direction: flip.direction,
            requested: flip.requested,
            drained: flip.drained.expect("flip completed before draining"),
            completed: now,
        });
    }

    fn kick_all(&mut self, now: SimTime) {
        for r in 0..self.replicas.len() {
            if let Some(end) = self.replicas[r].start_step_if_idle(now) {
                self.queue.push(end, Event::Step(r));
            }
        }
    }

    fn into_report(self) -> DisaggReport {
        let mut latencies: Samples = self.latencies.iter().copied().collect();
        // NaN, not a panic, when every session was shed at the gate.
        let p50_s = latencies.try_median().unwrap_or(f64::NAN);
        let p95_s = latencies.try_p95().unwrap_or(f64::NAN);
        // Integer tallies are order-free; decode-role engines import KV
        // without prefix lookups, so counting every replica matches the
        // prefill-pool-only sum of the static-split driver.
        let (mut hits, mut lookups) = (0u64, 0u64);
        let mut preemptions = 0u64;
        let (mut demoted, mut promoted, mut promoted_tokens, mut dropped) =
            (0u64, 0u64, 0u64, 0u64);
        for e in &self.replicas {
            let kv = e.kv().stats();
            hits += kv.hit_tokens;
            lookups += kv.hit_tokens + kv.miss_tokens;
            preemptions += e.metrics().preemptions;
            demoted += kv.demoted_blocks_host + kv.demoted_blocks_nvme;
            promoted += kv.promoted_blocks_host + kv.promoted_blocks_nvme;
            promoted_tokens += kv.promoted_tokens;
            dropped += kv.offload_dropped_blocks;
        }
        // Float sums follow final pool membership in ascending-index
        // order — with autoscaling disabled that is exactly the
        // prefill-then-decode order of the static-split driver, keeping
        // energy bit-identical.
        let mut energy_wh = 0.0;
        let mut prefill_utilization = Vec::with_capacity(self.prefill_members.len());
        let mut decode_utilization = Vec::with_capacity(self.decode_members.len());
        for &r in &self.prefill_members {
            let e = &self.replicas[r];
            energy_wh += e.metrics().energy_within(self.last_finish).watt_hours();
            prefill_utilization.push(e.metrics().utilization(self.last_finish));
        }
        for &r in &self.decode_members {
            let e = &self.replicas[r];
            energy_wh += e.metrics().energy_within(self.last_finish).watt_hours();
            decode_utilization.push(e.metrics().utilization(self.last_finish));
        }
        let migrated_calls = self.finished_calls.iter().filter(|c| c.migrated()).count() as u64;
        debug_assert_eq!(migrated_calls, self.transfers.completed());
        let makespan_s = self.last_finish.as_micros() as f64 / 1e6;
        let links = self
            .transfers
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.transfers() > 0)
            .map(|(r, l)| LinkStats {
                replica: r as u32,
                transfers: l.transfers(),
                chunks: l.chunks(),
                bytes: l.bytes_moved(),
                busy_s: l.busy_time().as_secs_f64(),
                wait_s: l.wait_time().as_secs_f64(),
                utilization: if makespan_s > 0.0 {
                    l.busy_time().as_secs_f64() / makespan_s
                } else {
                    0.0
                },
            })
            .collect();
        DisaggReport {
            offered_qps: self.config.qps,
            prefill_replicas: self.config.prefill_replicas,
            decode_replicas: self.config.decode_replicas,
            completed: self.completed,
            solved: self.solved,
            abandoned: self.abandoned,
            dropped: self.dropped,
            makespan: SimDuration::from_micros(self.last_finish.as_micros()),
            latencies,
            p50_s,
            p95_s,
            calls: self.finished_calls,
            migrated_calls,
            transferred_bytes: self.transfers.total_bytes(),
            transfer_wait: self.transfers.total_wait(),
            prefill_utilization,
            decode_utilization,
            energy_wh,
            kv_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            offload_demoted_blocks: demoted,
            offload_promoted_blocks: promoted,
            offload_promoted_tokens: promoted_tokens,
            offload_dropped_blocks: dropped,
            preemptions,
            flips: self.flips,
            links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscale::AutoscalePolicy;
    use agentsim_gpu::{FlipCostModel, LinkSpec};
    use agentsim_session::ClientModel;

    fn react(qps: f64, n: u64) -> DisaggReport {
        DisaggSim::new(DisaggConfig::new(DisaggWorkload::react_hotpotqa(), qps, n).seed(1)).run()
    }

    #[test]
    fn disagg_run_completes_and_migrates() {
        let r = react(0.5, 10);
        assert_eq!(r.completed, 10);
        assert!(r.migrated_calls > 0, "multi-token calls must migrate");
        assert!(r.transferred_bytes > 0);
        assert_eq!(
            r.transferred_bytes,
            r.calls.iter().map(|c| c.kv_bytes).sum::<u64>(),
            "link bytes match per-call KV footprints"
        );
        // Every migrated call's span partitions e2e exactly.
        for c in &r.calls {
            assert_eq!(c.span().total(), c.e2e(), "call of session {}", c.session);
            if c.migrated() {
                assert!(c.span().transfer > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn colocated_mode_never_transfers() {
        let cfg = DisaggConfig::colocated(DisaggWorkload::react_hotpotqa(), 2, 0.5, 10).seed(1);
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 10);
        assert_eq!(r.migrated_calls, 0);
        assert_eq!(r.transferred_bytes, 0);
        assert!(r.decode_utilization.is_empty());
        for c in &r.calls {
            assert!(!c.migrated());
            assert_eq!(c.span().transfer, SimDuration::ZERO);
            assert_eq!(c.span().total(), c.e2e());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = react(0.5, 8);
        let b = react(0.5, 8);
        assert_eq!(a.p95_s.to_bits(), b.p95_s.to_bits());
        assert_eq!(a.transferred_bytes, b.transferred_bytes);
        assert_eq!(a.calls, b.calls);
    }

    #[test]
    fn slower_links_lengthen_ttft() {
        let base = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 0.5, 10).seed(2);
        let fast = DisaggSim::new(base.clone().link(LinkSpec::nvlink4())).run();
        let slow_spec = LinkSpec {
            name: "slow",
            bandwidth_bytes_per_s: 1e8, // 100 MB/s: painfully slow on purpose
            latency: SimDuration::from_millis(5),
        };
        let slow = DisaggSim::new(base.link(slow_spec)).run();
        let (mut f, mut s) = (fast.ttft(), slow.ttft());
        assert!(
            s.median() > f.median(),
            "slow-link ttft {} vs fast {}",
            s.median(),
            f.median()
        );
        // The extra time is visible in the transfer phase, not smeared
        // into queue/decode.
        let transfer = |r: &DisaggReport| {
            r.phase_totals()
                .iter()
                .find(|(n, _)| *n == "transfer")
                .unwrap()
                .1
        };
        assert!(transfer(&slow) > transfer(&fast) * 10.0);
    }

    #[test]
    fn chatbot_traffic_is_served_too() {
        let cfg = DisaggConfig::new(DisaggWorkload::Chatbot, 1.0, 12).seed(3);
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 12);
        assert_eq!(r.calls.len(), 12, "one call per chatbot request");
    }

    #[test]
    fn closed_loop_runs_through_the_disagg_topology() {
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.0, 12)
            .seed(4)
            .client(ClientModel::ClosedLoop {
                concurrency: 3,
                think_time: SimDuration::from_secs(1),
            });
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 12);
        assert!(r.migrated_calls > 0, "turns still migrate");
        // Session ids stay within the population under closed loop.
        assert!(r.calls.iter().all(|c| c.session < 3));
    }

    #[test]
    fn pinned_controller_matches_disabled_bit_for_bit() {
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 0.8, 10)
            .seed(9)
            .pools(2, 2);
        let disabled = DisaggSim::new(cfg.clone()).run();
        let pinned = DisaggSim::new(cfg.autoscale(AutoscalePolicy::Pinned)).run();
        assert_eq!(disabled.calls, pinned.calls);
        assert_eq!(disabled.p95_s.to_bits(), pinned.p95_s.to_bits());
        assert_eq!(disabled.energy_wh.to_bits(), pinned.energy_wh.to_bits());
        assert!(pinned.flips.is_empty());
    }

    #[test]
    fn scheduled_flip_moves_a_replica_and_telescopes() {
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 0.8, 12)
            .seed(6)
            .pools(2, 2)
            .flip_cost(FlipCostModel::warm())
            .autoscale(AutoscalePolicy::Schedule(vec![(
                SimTime::from_secs_f64(2.0),
                FlipDirection::PrefillToDecode,
            )]));
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 12, "no request lost across the flip");
        assert_eq!(r.flips.len(), 1, "the scheduled flip fired");
        let f = &r.flips[0];
        assert_eq!(f.direction, FlipDirection::PrefillToDecode);
        assert!(f.replica < 2, "victim came from the prefill pool");
        assert!(f.requested >= SimTime::from_secs_f64(2.0));
        assert!(f.drained >= f.requested, "drain takes non-negative time");
        assert_eq!(
            f.completed.saturating_since(f.drained),
            FlipCostModel::warm().flip_time(),
            "reconfiguration gap follows the cost model exactly"
        );
        // Flipped decode pool gains a member; utilization vectors track
        // final membership.
        assert_eq!(r.prefill_utilization.len(), 1);
        assert_eq!(r.decode_utilization.len(), 3);
        // All spans still partition end-to-end exactly.
        for c in &r.calls {
            assert_eq!(c.span().total(), c.e2e());
        }
    }

    #[test]
    fn infeasible_schedule_entries_are_dropped() {
        // 1P+1D: both pools are at the one-replica floor, so neither
        // direction is feasible; the run must not stall or panic.
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 0.8, 8)
            .seed(7)
            .autoscale(AutoscalePolicy::Schedule(vec![
                (SimTime::from_secs_f64(1.0), FlipDirection::PrefillToDecode),
                (SimTime::from_secs_f64(2.0), FlipDirection::DecodeToPrefill),
            ]));
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 8);
        assert!(r.flips.is_empty(), "floor-protected pools never flip");
    }

    #[test]
    #[should_panic(expected = "requires a decode pool")]
    fn autoscaling_the_colocated_baseline_panics() {
        let cfg = DisaggConfig::colocated(DisaggWorkload::Chatbot, 2, 1.0, 4)
            .autoscale(AutoscalePolicy::Pinned);
        let _ = DisaggSim::new(cfg);
    }

    #[test]
    fn wide_gate_changes_nothing_observable() {
        let base = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.0, 10).seed(5);
        let open = DisaggSim::new(base.clone()).run();
        let gated = DisaggSim::new(base.max_inflight_prefill(1_000)).run();
        assert_eq!(gated.completed, 10);
        assert_eq!(gated.abandoned, 0);
        assert_eq!(gated.dropped, 0);
        assert_eq!(open.calls.len(), gated.calls.len());
    }

    #[test]
    fn tight_gate_still_completes_every_turn() {
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 2.0, 12)
            .seed(5)
            .max_inflight_prefill(1);
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 12);
        assert_eq!(r.abandoned, 0);
        for c in &r.calls {
            assert_eq!(c.span().total(), c.e2e(), "gated spans still telescope");
        }
    }

    #[test]
    fn op_wider_than_the_gate_runs_alone() {
        // Best-of-N submits all N samples as one op; a 1-call gate must
        // admit it via the head-of-line exception, not deadlock.
        let workload = DisaggWorkload::Agent {
            kind: AgentKind::BestOfN,
            benchmark: agentsim_workloads::Benchmark::HotpotQa,
            config: AgentConfig::default(),
        };
        let cfg = DisaggConfig::new(workload, 1.0, 6)
            .seed(3)
            .max_inflight_prefill(1);
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 6);
        assert!(
            r.calls.len() > 6,
            "Best-of-N turns carry several calls each"
        );
    }

    #[test]
    fn deadline_drop_sheds_under_pressure() {
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 4.0, 24)
            .seed(5)
            .max_inflight_prefill(1)
            .discipline(QueueDiscipline::DeadlineDrop)
            .deadline(SimDuration::from_secs(10));
        let r = DisaggSim::new(cfg).run();
        assert!(r.abandoned > 0, "a 1-call gate at 4 qps must shed work");
        assert_eq!(r.abandoned, r.dropped);
        assert_eq!(r.completed + r.abandoned, 24, "every turn resolves once");
        assert!(r.completed > 0, "early arrivals still beat the deadline");
        // Shed sessions never reached a replica: every recorded call
        // belongs to a session that was admitted.
        assert!(r.to_json().contains("\"abandoned\":"));
    }

    #[test]
    fn gated_parallel_run_matches_sequential_bit_for_bit() {
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 4.0, 20)
            .seed(6)
            .pools(2, 2)
            .max_inflight_prefill(2)
            .discipline(QueueDiscipline::DeadlineDrop)
            .deadline(SimDuration::from_secs(12));
        let sequential = DisaggSim::new(cfg.clone()).run();
        let parallel = DisaggSim::new(cfg.threads(3)).run();
        assert_eq!(sequential.calls, parallel.calls);
        assert_eq!(sequential.abandoned, parallel.abandoned);
        assert_eq!(sequential.p95_s.to_bits(), parallel.p95_s.to_bits());
        assert_eq!(sequential.energy_wh.to_bits(), parallel.energy_wh.to_bits());
    }

    #[test]
    fn hysteresis_flips_under_sustained_prefill_pressure() {
        use crate::autoscale::HysteresisConfig;
        // ReAct traffic is prefill-heavy; with a hair-trigger band the
        // controller should pull a decode replica over.
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 2.0, 24)
            .seed(8)
            .pools(1, 3)
            .flip_cost(FlipCostModel::zero())
            .autoscale(AutoscalePolicy::Hysteresis(HysteresisConfig {
                high: 1.2,
                low: 0.1,
                dwell: SimDuration::ZERO,
                ..HysteresisConfig::default()
            }));
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 24);
        assert!(
            r.flips
                .iter()
                .any(|f| f.direction == FlipDirection::DecodeToPrefill),
            "sustained prefill pressure must pull a decode replica over (flips: {:?})",
            r.flips
        );
    }
}
