//! The disaggregated-serving driver: prefill pool → KV transfer →
//! decode pool, with the colocated baseline as the degenerate case.
//!
//! Mirrors the colocated drivers' event loop and RNG derivation exactly
//! (same root constants, same arrival process, same per-session forks —
//! all via [`agentsim_session`]), so a disaggregated run and a colocated
//! run at the same seed differ *only* in serving topology — the what-if
//! experiments compare nothing else. The session state machine itself is
//! the shared [`SessionRunner`]; only the two-pool call lifecycle
//! (prefill leg, transfer, decode leg) lives here.

use std::collections::HashMap;

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::{Engine, EngineObserver, EngineRole, LlmCompletion, RequestId};
use agentsim_metrics::Samples;
use agentsim_session::{
    seeds, Arrival, ArrivalProcess, CallDone, SessionCmd, SessionRunner, ToolRng,
};
use agentsim_simkit::{EventQueue, SimDuration, SimRng, SimTime};
use agentsim_tools::ToolExecutor;
use agentsim_workloads::{ShareGptGenerator, TaskGenerator};

use crate::config::{DisaggConfig, DisaggWorkload, PoolRouting};
use crate::report::{CallRecord, DisaggReport};
use crate::transfer::TransferScheduler;

#[derive(Debug)]
enum Event {
    Arrival(Arrival),
    PrefillStep(usize),
    DecodeStep(usize),
    TransferDone(u64),
    ToolsDone(u64),
}

/// One call's record under construction (prefill leg, then optionally a
/// transfer and a decode leg).
struct CallState {
    session: u64,
    /// The call's index within its session's current LLM op.
    seq: u32,
    prefill_replica: usize,
    decode_replica: Option<usize>,
    decode_submitted: Option<SimTime>,
    transfer_wait: SimDuration,
    /// Prefill leg, captured at migration time (`None` until then; local
    /// completions fill the record directly).
    migration: Option<agentsim_llm::MigratedRequest>,
}

/// The disaggregated serving simulator. Build with [`DisaggSim::new`],
/// consume with [`DisaggSim::run`].
pub struct DisaggSim {
    config: DisaggConfig,
    prefill_engines: Vec<Engine>,
    decode_engines: Vec<Engine>,
    transfers: TransferScheduler,
    /// Transfer id → call id.
    transfer_owner: HashMap<u64, u64>,
    tools: ToolExecutor,
    queue: EventQueue<Event>,
    client: Box<dyn ArrivalProcess>,
    sessions: Vec<Option<SessionRunner>>,
    calls: Vec<CallState>,
    finished_calls: Vec<CallRecord>,
    prefill_owner: HashMap<(usize, RequestId), u64>,
    decode_owner: HashMap<(usize, RequestId), u64>,
    root_rng: SimRng,
    rr_prefill: usize,
    rr_decode: usize,
    latencies: Vec<f64>,
    completed: u64,
    solved: u64,
    last_finish: SimTime,
}

impl std::fmt::Debug for DisaggSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DisaggSim")
            .field("prefill_replicas", &self.prefill_engines.len())
            .field("decode_replicas", &self.decode_engines.len())
            .field("qps", &self.config.qps)
            .finish_non_exhaustive()
    }
}

impl DisaggSim {
    /// Builds the simulator (the first arrivals are scheduled; the rest
    /// chain lazily as the run progresses).
    pub fn new(config: DisaggConfig) -> Self {
        let prefill_role = if config.is_colocated() {
            EngineRole::Colocated
        } else {
            EngineRole::Prefill
        };
        let prefill_engines = (0..config.prefill_replicas)
            .map(|_| Engine::new(config.engine.clone().with_role(prefill_role)))
            .collect();
        let decode_engines = (0..config.decode_replicas)
            .map(|_| Engine::new(config.engine.clone().with_role(EngineRole::Decode)))
            .collect();
        let transfers =
            TransferScheduler::new(config.link.clone(), config.decode_replicas as usize);
        // Same root/arrival derivation as the colocated open-loop driver:
        // identical seeds ⇒ identical arrival processes.
        let root_rng = SimRng::seed_from(config.seed ^ seeds::SERVING_ROOT);
        let mut client = config.client.build(
            config.qps,
            config.num_requests,
            root_rng.fork(seeds::ARRIVALS),
        );
        let mut queue = EventQueue::new();
        for a in client.initial() {
            queue.push(a.at, Event::Arrival(a));
        }
        let sessions = (0..config.client.sessions(config.num_requests))
            .map(|_| None)
            .collect();
        DisaggSim {
            prefill_engines,
            decode_engines,
            transfers,
            transfer_owner: HashMap::new(),
            tools: ToolExecutor::new(),
            queue,
            client,
            sessions,
            calls: Vec::new(),
            finished_calls: Vec::new(),
            prefill_owner: HashMap::new(),
            decode_owner: HashMap::new(),
            root_rng,
            rr_prefill: 0,
            rr_decode: 0,
            latencies: Vec::new(),
            completed: 0,
            solved: 0,
            last_finish: SimTime::ZERO,
            config,
        }
    }

    /// Replaces prefill replica `replica`'s engine observer (for span
    /// recorders or invariant checkers).
    pub fn set_prefill_observer(&mut self, replica: usize, observer: Box<dyn EngineObserver>) {
        self.prefill_engines[replica].set_observer(observer);
    }

    /// Replaces decode replica `replica`'s engine observer.
    pub fn set_decode_observer(&mut self, replica: usize, observer: Box<dyn EngineObserver>) {
        self.decode_engines[replica].set_observer(observer);
    }

    /// Pool sizes as `(prefill, decode)` (for observer attachment).
    pub fn pool_sizes(&self) -> (usize, usize) {
        (self.prefill_engines.len(), self.decode_engines.len())
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> DisaggReport {
        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::Arrival(a) => self.on_arrival(a, now),
                Event::PrefillStep(p) => self.on_prefill_step(p, now),
                Event::DecodeStep(d) => self.on_decode_step(d, now),
                Event::TransferDone(tid) => self.on_transfer_done(tid, now),
                Event::ToolsDone(sid) => {
                    let cmd = self.sessions[sid as usize]
                        .as_mut()
                        .expect("live session")
                        .on_tools_done(&self.tools, now);
                    self.exec(sid, cmd, now);
                }
            }
            self.kick_all(now);
        }
        let expected = self.config.client.total_turns(self.config.num_requests);
        assert_eq!(self.completed, expected, "all turns must finish");
        assert_eq!(self.transfers.outstanding(), 0, "no transfer left behind");
        self.into_report()
    }

    fn on_arrival(&mut self, a: Arrival, now: SimTime) {
        // Chain the next arrival first, so it precedes any event this
        // one schedules at the same instant.
        if let Some(next) = self.client.after_arrival(now) {
            self.queue.push(next.at, Event::Arrival(next));
        }
        let (runner, cmd) = match self.config.workload {
            DisaggWorkload::Chatbot => self.start_chatbot(a.turn, now),
            DisaggWorkload::Agent {
                kind,
                benchmark,
                config,
            } => self.start_agent(a.turn, now, kind, benchmark, config),
        };
        let slot = &mut self.sessions[a.session as usize];
        assert!(slot.is_none(), "session {} already live", a.session);
        *slot = Some(runner);
        self.exec(a.session, cmd, now);
    }

    fn start_chatbot(&mut self, turn: u64, now: SimTime) -> (SessionRunner, SessionCmd) {
        let query = ShareGptGenerator::new(self.config.seed).query(turn);
        SessionRunner::chatbot(
            query.prompt,
            query.output_tokens,
            query.gen_seed,
            turn,
            self.root_rng.fork(turn ^ seeds::CHATBOT_SESSION),
            now,
        )
    }

    fn start_agent(
        &mut self,
        turn: u64,
        now: SimTime,
        kind: AgentKind,
        benchmark: agentsim_workloads::Benchmark,
        config: AgentConfig,
    ) -> (SessionRunner, SessionCmd) {
        let task = TaskGenerator::new(benchmark, self.config.seed).task(turn);
        SessionRunner::agent(
            kind,
            &task,
            config,
            self.root_rng.fork(turn ^ seeds::AGENT_SESSION),
            ToolRng::ForkByTime,
            &self.tools,
            now,
        )
    }

    fn route_prefill(&mut self) -> usize {
        let n = self.prefill_engines.len();
        match self.config.prefill_routing {
            PoolRouting::RoundRobin => {
                let replica = self.rr_prefill % n;
                self.rr_prefill = (replica + 1) % n;
                replica
            }
            PoolRouting::LeastLoaded => (0..n)
                .min_by_key(|&p| {
                    self.prefill_engines[p].queue_len() + self.prefill_engines[p].running_len()
                })
                .expect("non-empty prefill pool"),
        }
    }

    fn route_decode(&mut self) -> usize {
        let n = self.decode_engines.len();
        match self.config.decode_routing {
            PoolRouting::RoundRobin => {
                let replica = self.rr_decode % n;
                self.rr_decode = (replica + 1) % n;
                replica
            }
            PoolRouting::LeastLoaded => (0..n)
                .min_by_key(|&d| {
                    self.decode_engines[d].queue_len()
                        + self.decode_engines[d].running_len()
                        + self.transfers.in_flight(d) as usize
                })
                .expect("non-empty decode pool"),
        }
    }

    /// Executes a session command against the two-pool topology.
    fn exec(&mut self, sid: u64, cmd: SessionCmd, now: SimTime) {
        match cmd {
            SessionCmd::Llm(op) => {
                for (seq, c) in op.calls.into_iter().enumerate() {
                    let replica = self.route_prefill();
                    let id = self.prefill_engines[replica].submit_with_priority(
                        now,
                        c.prompt,
                        c.out_tokens,
                        c.gen_seed,
                        op.priority,
                    );
                    let call = self.calls.len() as u64;
                    self.calls.push(CallState {
                        session: sid,
                        seq: seq as u32,
                        prefill_replica: replica,
                        decode_replica: None,
                        decode_submitted: None,
                        transfer_wait: SimDuration::ZERO,
                        migration: None,
                    });
                    self.prefill_owner.insert((replica, id), call);
                }
            }
            SessionCmd::Tools { wake } => {
                self.queue.push(wake, Event::ToolsDone(sid));
            }
            SessionCmd::Finish(outcome) => {
                let runner = self.sessions[sid as usize]
                    .take()
                    .expect("live session finishing");
                self.latencies.push(runner.trace().e2e().as_secs_f64());
                self.completed += 1;
                self.solved += outcome.solved as u64;
                self.last_finish = self.last_finish.max(now);
                if let Some(next) = self.client.after_finish(sid, now) {
                    self.queue.push(next.at, Event::Arrival(next));
                }
            }
        }
    }

    fn on_prefill_step(&mut self, replica: usize, now: SimTime) {
        // Local completions: colocated mode, or single-token outputs that
        // never leave the prefill pool.
        let completions = self.prefill_engines[replica].complete_step(now);
        for completion in completions {
            let call = self
                .prefill_owner
                .remove(&(replica, completion.id))
                .expect("prefill completion belongs to a call");
            self.finish_local_call(call, &completion, now);
        }
        // Migrations: first token produced, KV ready to move.
        for migration in self.prefill_engines[replica].take_migrations() {
            let call = self
                .prefill_owner
                .remove(&(replica, migration.id))
                .expect("migration belongs to a call");
            let dst = self.route_decode();
            let state = &mut self.calls[call as usize];
            state.decode_replica = Some(dst);
            let (tid, arrival) = self.transfers.schedule(now, dst, migration);
            self.transfer_owner.insert(tid, call);
            self.queue.push(arrival, Event::TransferDone(tid));
        }
    }

    fn on_transfer_done(&mut self, tid: u64, now: SimTime) {
        let call = self
            .transfer_owner
            .remove(&tid)
            .expect("transfer belongs to a call");
        let pt = self.transfers.complete(tid);
        let id = self.decode_engines[pt.dst].submit_prefilled(now, &pt.migration);
        let state = &mut self.calls[call as usize];
        state.decode_submitted = Some(now);
        state.transfer_wait = pt.transfer.wait;
        state.migration = Some(pt.migration);
        self.decode_owner.insert((pt.dst, id), call);
    }

    fn on_decode_step(&mut self, replica: usize, now: SimTime) {
        let completions = self.decode_engines[replica].complete_step(now);
        for completion in completions {
            let call = self
                .decode_owner
                .remove(&(replica, completion.id))
                .expect("decode completion belongs to a call");
            self.finish_migrated_call(call, &completion, now);
        }
    }

    /// A call that completed without leaving the prefill pool.
    fn finish_local_call(&mut self, call: u64, completion: &LlmCompletion, now: SimTime) {
        let state = &self.calls[call as usize];
        // First token lands at the end of the prefill phase; clamp for
        // single-token calls whose first token is also the last.
        let released = (completion.started + completion.prefill_time).min(completion.finished);
        self.finished_calls.push(CallRecord {
            session: state.session,
            prefill_replica: state.prefill_replica as u32,
            decode_replica: None,
            arrived: completion.arrived,
            prefill_started: completion.started,
            released,
            decode_submitted: None,
            decode_started: None,
            finished: completion.finished,
            prompt_tokens: completion.prompt_tokens,
            cached_tokens: completion.cached_tokens,
            output_tokens: completion.output_tokens,
            prefill_time: completion.prefill_time,
            decode_time: completion.decode_time,
            transfer_wait: SimDuration::ZERO,
            kv_bytes: 0,
            preemptions: completion.preemptions,
        });
        self.finish_call_in_session(call, completion.output_tokens, now);
    }

    /// A call that prefilled, migrated, and decoded to completion.
    fn finish_migrated_call(&mut self, call: u64, completion: &LlmCompletion, now: SimTime) {
        let state = &self.calls[call as usize];
        let m = state.migration.as_ref().expect("migrated call has a leg");
        debug_assert!(
            completion.prefill_time.is_zero(),
            "decode pools never run prefill steps"
        );
        self.finished_calls.push(CallRecord {
            session: state.session,
            prefill_replica: state.prefill_replica as u32,
            decode_replica: state.decode_replica.map(|d| d as u32),
            arrived: m.arrived,
            prefill_started: m.started,
            released: m.released,
            decode_submitted: state.decode_submitted,
            decode_started: Some(completion.started),
            finished: completion.finished,
            prompt_tokens: m.prompt_tokens,
            cached_tokens: m.cached_tokens,
            output_tokens: completion.output_tokens,
            prefill_time: m.prefill_time,
            decode_time: completion.decode_time,
            transfer_wait: state.transfer_wait,
            kv_bytes: m.kv_bytes,
            preemptions: m.preemptions + completion.preemptions,
        });
        self.finish_call_in_session(call, completion.output_tokens, now);
    }

    /// Session bookkeeping shared by both completion paths. The session
    /// level only needs the output-token count — per-leg engine records
    /// are already stitched into [`CallRecord`]s.
    fn finish_call_in_session(&mut self, call: u64, output_tokens: u32, now: SimTime) {
        let state = &self.calls[call as usize];
        let (sid, seq) = (state.session, state.seq);
        let cmd = self.sessions[sid as usize]
            .as_mut()
            .expect("live session")
            .on_call_done(seq, CallDone::tokens_only(output_tokens), &self.tools, now);
        if let Some(cmd) = cmd {
            self.exec(sid, cmd, now);
        }
    }

    fn kick_all(&mut self, now: SimTime) {
        for p in 0..self.prefill_engines.len() {
            if let Some(end) = self.prefill_engines[p].start_step_if_idle(now) {
                self.queue.push(end, Event::PrefillStep(p));
            }
        }
        for d in 0..self.decode_engines.len() {
            if let Some(end) = self.decode_engines[d].start_step_if_idle(now) {
                self.queue.push(end, Event::DecodeStep(d));
            }
        }
    }

    fn into_report(self) -> DisaggReport {
        let mut latencies: Samples = self.latencies.iter().copied().collect();
        let p50_s = latencies.median();
        let p95_s = latencies.p95();
        let (mut hits, mut lookups) = (0u64, 0u64);
        let mut energy_wh = 0.0;
        let mut preemptions = 0u64;
        let mut prefill_utilization = Vec::with_capacity(self.prefill_engines.len());
        let mut decode_utilization = Vec::with_capacity(self.decode_engines.len());
        for e in &self.prefill_engines {
            let kv = e.kv().stats();
            hits += kv.hit_tokens;
            lookups += kv.hit_tokens + kv.miss_tokens;
            energy_wh += e.metrics().energy_within(self.last_finish).watt_hours();
            preemptions += e.metrics().preemptions;
            prefill_utilization.push(e.metrics().utilization(self.last_finish));
        }
        for e in &self.decode_engines {
            energy_wh += e.metrics().energy_within(self.last_finish).watt_hours();
            preemptions += e.metrics().preemptions;
            decode_utilization.push(e.metrics().utilization(self.last_finish));
        }
        let migrated_calls = self.finished_calls.iter().filter(|c| c.migrated()).count() as u64;
        debug_assert_eq!(migrated_calls, self.transfers.completed());
        DisaggReport {
            offered_qps: self.config.qps,
            prefill_replicas: self.config.prefill_replicas,
            decode_replicas: self.config.decode_replicas,
            completed: self.completed,
            solved: self.solved,
            makespan: SimDuration::from_micros(self.last_finish.as_micros()),
            latencies,
            p50_s,
            p95_s,
            calls: self.finished_calls,
            migrated_calls,
            transferred_bytes: self.transfers.total_bytes(),
            transfer_wait: self.transfers.total_wait(),
            prefill_utilization,
            decode_utilization,
            energy_wh,
            kv_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            preemptions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_gpu::LinkSpec;
    use agentsim_session::ClientModel;

    fn react(qps: f64, n: u64) -> DisaggReport {
        DisaggSim::new(DisaggConfig::new(DisaggWorkload::react_hotpotqa(), qps, n).seed(1)).run()
    }

    #[test]
    fn disagg_run_completes_and_migrates() {
        let r = react(0.5, 10);
        assert_eq!(r.completed, 10);
        assert!(r.migrated_calls > 0, "multi-token calls must migrate");
        assert!(r.transferred_bytes > 0);
        assert_eq!(
            r.transferred_bytes,
            r.calls.iter().map(|c| c.kv_bytes).sum::<u64>(),
            "link bytes match per-call KV footprints"
        );
        // Every migrated call's span partitions e2e exactly.
        for c in &r.calls {
            assert_eq!(c.span().total(), c.e2e(), "call of session {}", c.session);
            if c.migrated() {
                assert!(c.span().transfer > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn colocated_mode_never_transfers() {
        let cfg = DisaggConfig::colocated(DisaggWorkload::react_hotpotqa(), 2, 0.5, 10).seed(1);
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 10);
        assert_eq!(r.migrated_calls, 0);
        assert_eq!(r.transferred_bytes, 0);
        assert!(r.decode_utilization.is_empty());
        for c in &r.calls {
            assert!(!c.migrated());
            assert_eq!(c.span().transfer, SimDuration::ZERO);
            assert_eq!(c.span().total(), c.e2e());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = react(0.5, 8);
        let b = react(0.5, 8);
        assert_eq!(a.p95_s.to_bits(), b.p95_s.to_bits());
        assert_eq!(a.transferred_bytes, b.transferred_bytes);
        assert_eq!(a.calls, b.calls);
    }

    #[test]
    fn slower_links_lengthen_ttft() {
        let base = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 0.5, 10).seed(2);
        let fast = DisaggSim::new(base.clone().link(LinkSpec::nvlink4())).run();
        let slow_spec = LinkSpec {
            name: "slow",
            bandwidth_bytes_per_s: 1e8, // 100 MB/s: painfully slow on purpose
            latency: SimDuration::from_millis(5),
        };
        let slow = DisaggSim::new(base.link(slow_spec)).run();
        let (mut f, mut s) = (fast.ttft(), slow.ttft());
        assert!(
            s.median() > f.median(),
            "slow-link ttft {} vs fast {}",
            s.median(),
            f.median()
        );
        // The extra time is visible in the transfer phase, not smeared
        // into queue/decode.
        let transfer = |r: &DisaggReport| {
            r.phase_totals()
                .iter()
                .find(|(n, _)| *n == "transfer")
                .unwrap()
                .1
        };
        assert!(transfer(&slow) > transfer(&fast) * 10.0);
    }

    #[test]
    fn chatbot_traffic_is_served_too() {
        let cfg = DisaggConfig::new(DisaggWorkload::Chatbot, 1.0, 12).seed(3);
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 12);
        assert_eq!(r.calls.len(), 12, "one call per chatbot request");
    }

    #[test]
    fn closed_loop_runs_through_the_disagg_topology() {
        let cfg = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 1.0, 12)
            .seed(4)
            .client(ClientModel::ClosedLoop {
                concurrency: 3,
                think_time: SimDuration::from_secs(1),
            });
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 12);
        assert!(r.migrated_calls > 0, "turns still migrate");
        // Session ids stay within the population under closed loop.
        assert!(r.calls.iter().all(|c| c.session < 3));
    }
}
