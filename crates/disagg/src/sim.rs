//! The disaggregated-serving driver: prefill pool → KV transfer →
//! decode pool, with the colocated baseline as the degenerate case.
//!
//! Mirrors the colocated drivers' event loop and RNG derivation exactly
//! (same root constants, same arrival process, same per-session forks),
//! so a disaggregated run and a colocated run at the same seed differ
//! *only* in serving topology — the what-if experiments compare nothing
//! else.

use std::collections::HashMap;

use agentsim_agents::{
    build_agent, AgentConfig, AgentKind, AgentOp, AgentPolicy, LlmCallSpec, LlmOutput, OpResult,
};
use agentsim_llm::{Engine, EngineObserver, EngineRole, LlmCompletion, MigratedRequest, RequestId};
use agentsim_metrics::Samples;
use agentsim_simkit::dist::{Exponential, Sample};
use agentsim_simkit::{EventQueue, SimDuration, SimRng, SimTime};
use agentsim_tools::{ToolCall, ToolExecutor, ToolResult};
use agentsim_workloads::{Benchmark, ShareGptGenerator, TaskGenerator};

use crate::config::{DisaggConfig, DisaggWorkload, PoolRouting};
use crate::report::{CallRecord, DisaggReport};
use crate::transfer::TransferScheduler;

#[derive(Debug)]
enum Event {
    Arrival(u64),
    PrefillStep(usize),
    DecodeStep(usize),
    TransferDone(u64),
    ToolsDone(u64),
}

struct Session {
    /// `None` for chatbot sessions (single call, no policy).
    policy: Option<Box<dyn AgentPolicy>>,
    rng: SimRng,
    arrived: SimTime,
    /// Outstanding calls of the current op: `(call id, spec)`.
    pending: Vec<(u64, LlmCallSpec)>,
    /// Output token counts of finished calls of the current op.
    done: HashMap<u64, u32>,
    scheduled_tools: Vec<ToolResult>,
    overlap_tools: Option<(Vec<ToolCall>, f64)>,
    op_start: SimTime,
    calls_made: u32,
}

/// One call's record under construction (prefill leg, then optionally a
/// transfer and a decode leg).
struct CallState {
    session: u64,
    prefill_replica: usize,
    decode_replica: Option<usize>,
    decode_submitted: Option<SimTime>,
    transfer_wait: SimDuration,
    /// Prefill leg, captured at migration time (`None` until then; local
    /// completions fill the record directly).
    migration: Option<MigratedRequest>,
}

/// The disaggregated serving simulator. Build with [`DisaggSim::new`],
/// consume with [`DisaggSim::run`].
pub struct DisaggSim {
    config: DisaggConfig,
    prefill_engines: Vec<Engine>,
    decode_engines: Vec<Engine>,
    transfers: TransferScheduler,
    /// Transfer id → call id.
    transfer_owner: HashMap<u64, u64>,
    tools: ToolExecutor,
    queue: EventQueue<Event>,
    sessions: Vec<Option<Session>>,
    calls: Vec<CallState>,
    finished_calls: Vec<CallRecord>,
    prefill_owner: HashMap<(usize, RequestId), u64>,
    decode_owner: HashMap<(usize, RequestId), u64>,
    root_rng: SimRng,
    rr_prefill: usize,
    rr_decode: usize,
    latencies: Vec<f64>,
    completed: u64,
    solved: u64,
    last_finish: SimTime,
}

impl std::fmt::Debug for DisaggSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DisaggSim")
            .field("prefill_replicas", &self.prefill_engines.len())
            .field("decode_replicas", &self.decode_engines.len())
            .field("qps", &self.config.qps)
            .finish_non_exhaustive()
    }
}

impl DisaggSim {
    /// Builds the simulator (arrivals pre-scheduled).
    pub fn new(config: DisaggConfig) -> Self {
        let prefill_role = if config.is_colocated() {
            EngineRole::Colocated
        } else {
            EngineRole::Prefill
        };
        let prefill_engines = (0..config.prefill_replicas)
            .map(|_| Engine::new(config.engine.clone().with_role(prefill_role)))
            .collect();
        let decode_engines = (0..config.decode_replicas)
            .map(|_| Engine::new(config.engine.clone().with_role(EngineRole::Decode)))
            .collect();
        let transfers =
            TransferScheduler::new(config.link.clone(), config.decode_replicas as usize);
        // Same root/arrival derivation as the colocated open-loop driver:
        // identical seeds ⇒ identical arrival processes.
        let root_rng = SimRng::seed_from(config.seed ^ 0x5E61);
        let mut queue = EventQueue::new();
        let gaps = Exponential::with_rate(config.qps);
        let mut arrival_rng = root_rng.fork(0xA221);
        let mut t = SimTime::ZERO;
        for i in 0..config.num_requests {
            t += SimDuration::from_secs_f64(gaps.sample(&mut arrival_rng));
            queue.push(t, Event::Arrival(i));
        }
        let sessions = (0..config.num_requests).map(|_| None).collect();
        DisaggSim {
            prefill_engines,
            decode_engines,
            transfers,
            transfer_owner: HashMap::new(),
            tools: ToolExecutor::new(),
            queue,
            sessions,
            calls: Vec::new(),
            finished_calls: Vec::new(),
            prefill_owner: HashMap::new(),
            decode_owner: HashMap::new(),
            root_rng,
            rr_prefill: 0,
            rr_decode: 0,
            latencies: Vec::new(),
            completed: 0,
            solved: 0,
            last_finish: SimTime::ZERO,
            config,
        }
    }

    /// Replaces prefill replica `replica`'s engine observer (for span
    /// recorders or invariant checkers).
    pub fn set_prefill_observer(&mut self, replica: usize, observer: Box<dyn EngineObserver>) {
        self.prefill_engines[replica].set_observer(observer);
    }

    /// Replaces decode replica `replica`'s engine observer.
    pub fn set_decode_observer(&mut self, replica: usize, observer: Box<dyn EngineObserver>) {
        self.decode_engines[replica].set_observer(observer);
    }

    /// Pool sizes as `(prefill, decode)` (for observer attachment).
    pub fn pool_sizes(&self) -> (usize, usize) {
        (self.prefill_engines.len(), self.decode_engines.len())
    }

    /// Runs to completion and reports.
    pub fn run(mut self) -> DisaggReport {
        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::Arrival(i) => self.on_arrival(i, now),
                Event::PrefillStep(p) => self.on_prefill_step(p, now),
                Event::DecodeStep(d) => self.on_decode_step(d, now),
                Event::TransferDone(tid) => self.on_transfer_done(tid, now),
                Event::ToolsDone(sid) => self.on_tools_done(sid, now),
            }
            self.kick_all(now);
        }
        assert_eq!(
            self.completed, self.config.num_requests,
            "all requests must finish"
        );
        assert_eq!(self.transfers.outstanding(), 0, "no transfer left behind");
        self.into_report()
    }

    fn on_arrival(&mut self, i: u64, now: SimTime) {
        match self.config.workload {
            DisaggWorkload::Chatbot => self.arrive_chatbot(i, now),
            DisaggWorkload::Agent {
                kind,
                benchmark,
                config,
            } => self.arrive_agent(i, now, kind, benchmark, config),
        }
    }

    fn arrive_chatbot(&mut self, i: u64, now: SimTime) {
        let query = ShareGptGenerator::new(self.config.seed).query(i);
        let mut s = Session {
            policy: None,
            rng: self.root_rng.fork(i ^ 0xC4A7),
            arrived: now,
            pending: Vec::new(),
            done: HashMap::new(),
            scheduled_tools: Vec::new(),
            overlap_tools: None,
            op_start: now,
            calls_made: 0,
        };
        let spec = LlmCallSpec {
            prompt: Default::default(),
            out_tokens: query.output_tokens,
            gen_seed: query.gen_seed,
            kind: agentsim_agents::OutputKind::Answer,
            breakdown: Default::default(),
        };
        let call = self.submit_call(i, now, query.prompt, query.output_tokens, query.gen_seed, 0);
        s.pending.push((call, spec));
        self.sessions[i as usize] = Some(s);
    }

    fn arrive_agent(
        &mut self,
        i: u64,
        now: SimTime,
        kind: AgentKind,
        benchmark: Benchmark,
        config: AgentConfig,
    ) {
        let task = TaskGenerator::new(benchmark, self.config.seed).task(i);
        let mut s = Session {
            policy: Some(build_agent(kind, &task, config)),
            rng: self.root_rng.fork(i ^ 0xA6E7),
            arrived: now,
            pending: Vec::new(),
            done: HashMap::new(),
            scheduled_tools: Vec::new(),
            overlap_tools: None,
            op_start: now,
            calls_made: 0,
        };
        let op = s
            .policy
            .as_mut()
            .expect("agent session")
            .next(&OpResult::empty(), &mut s.rng);
        self.sessions[i as usize] = Some(s);
        self.dispatch(i, op, now);
    }

    fn route_prefill(&mut self) -> usize {
        let n = self.prefill_engines.len();
        match self.config.prefill_routing {
            PoolRouting::RoundRobin => {
                let replica = self.rr_prefill % n;
                self.rr_prefill = (replica + 1) % n;
                replica
            }
            PoolRouting::LeastLoaded => (0..n)
                .min_by_key(|&p| {
                    self.prefill_engines[p].queue_len() + self.prefill_engines[p].running_len()
                })
                .expect("non-empty prefill pool"),
        }
    }

    fn route_decode(&mut self) -> usize {
        let n = self.decode_engines.len();
        match self.config.decode_routing {
            PoolRouting::RoundRobin => {
                let replica = self.rr_decode % n;
                self.rr_decode = (replica + 1) % n;
                replica
            }
            PoolRouting::LeastLoaded => (0..n)
                .min_by_key(|&d| {
                    self.decode_engines[d].queue_len()
                        + self.decode_engines[d].running_len()
                        + self.transfers.in_flight(d) as usize
                })
                .expect("non-empty decode pool"),
        }
    }

    /// Submits one LLM call to the prefill pool and registers its state.
    fn submit_call(
        &mut self,
        sid: u64,
        now: SimTime,
        prompt: agentsim_kvcache::TokenBuf,
        out_tokens: u32,
        gen_seed: u64,
        priority: u32,
    ) -> u64 {
        let replica = self.route_prefill();
        let id = self.prefill_engines[replica]
            .submit_with_priority(now, prompt, out_tokens, gen_seed, priority);
        let call = self.calls.len() as u64;
        self.calls.push(CallState {
            session: sid,
            prefill_replica: replica,
            decode_replica: None,
            decode_submitted: None,
            transfer_wait: SimDuration::ZERO,
            migration: None,
        });
        self.prefill_owner.insert((replica, id), call);
        call
    }

    fn dispatch(&mut self, sid: u64, op: AgentOp, now: SimTime) {
        match op {
            AgentOp::Llm(spec) => self.dispatch_llm(sid, vec![spec], now),
            AgentOp::LlmBatch(specs) => self.dispatch_llm(sid, specs, now),
            AgentOp::Tools(calls) => {
                let tools = &self.tools;
                let session = self.sessions[sid as usize].as_mut().expect("live session");
                session.op_start = now;
                let mut rng = session.rng.fork(now.as_micros());
                let results: Vec<ToolResult> = tools.execute_batch(&calls, &mut rng);
                let wall = results
                    .iter()
                    .map(|r| r.latency)
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                session.scheduled_tools = results;
                self.queue.push(now + wall, Event::ToolsDone(sid));
            }
            AgentOp::OverlappedPlan {
                llm,
                tools,
                overlap,
            } => {
                let session = self.sessions[sid as usize].as_mut().expect("live session");
                session.overlap_tools = Some((tools, overlap));
                self.dispatch_llm(sid, vec![llm], now);
            }
            AgentOp::Finish(outcome) => {
                let session = self.sessions[sid as usize]
                    .take()
                    .expect("live session finishing");
                self.latencies
                    .push(now.saturating_since(session.arrived).as_secs_f64());
                self.completed += 1;
                self.solved += outcome.solved as u64;
                self.last_finish = self.last_finish.max(now);
            }
        }
    }

    fn dispatch_llm(&mut self, sid: u64, specs: Vec<LlmCallSpec>, now: SimTime) {
        let priority = {
            let session = self.sessions[sid as usize].as_mut().expect("live session");
            session.op_start = now;
            session.done.clear();
            let priority = session.calls_made;
            session.calls_made += specs.len() as u32;
            priority
        };
        for mut spec in specs {
            let prompt = std::mem::take(&mut spec.prompt);
            let call = self.submit_call(sid, now, prompt, spec.out_tokens, spec.gen_seed, priority);
            let session = self.sessions[sid as usize].as_mut().expect("live session");
            session.pending.push((call, spec));
        }
    }

    fn on_prefill_step(&mut self, replica: usize, now: SimTime) {
        // Local completions: colocated mode, or single-token outputs that
        // never leave the prefill pool.
        let completions = self.prefill_engines[replica].complete_step(now);
        for completion in completions {
            let call = self
                .prefill_owner
                .remove(&(replica, completion.id))
                .expect("prefill completion belongs to a call");
            self.finish_local_call(call, &completion, now);
        }
        // Migrations: first token produced, KV ready to move.
        for migration in self.prefill_engines[replica].take_migrations() {
            let call = self
                .prefill_owner
                .remove(&(replica, migration.id))
                .expect("migration belongs to a call");
            let dst = self.route_decode();
            let state = &mut self.calls[call as usize];
            state.decode_replica = Some(dst);
            let (tid, arrival) = self.transfers.schedule(now, dst, migration);
            self.transfer_owner.insert(tid, call);
            self.queue.push(arrival, Event::TransferDone(tid));
        }
    }

    fn on_transfer_done(&mut self, tid: u64, now: SimTime) {
        let call = self
            .transfer_owner
            .remove(&tid)
            .expect("transfer belongs to a call");
        let pt = self.transfers.complete(tid);
        let id = self.decode_engines[pt.dst].submit_prefilled(now, &pt.migration);
        let state = &mut self.calls[call as usize];
        state.decode_submitted = Some(now);
        state.transfer_wait = pt.transfer.wait;
        state.migration = Some(pt.migration);
        self.decode_owner.insert((pt.dst, id), call);
    }

    fn on_decode_step(&mut self, replica: usize, now: SimTime) {
        let completions = self.decode_engines[replica].complete_step(now);
        for completion in completions {
            let call = self
                .decode_owner
                .remove(&(replica, completion.id))
                .expect("decode completion belongs to a call");
            self.finish_migrated_call(call, &completion, now);
        }
    }

    /// A call that completed without leaving the prefill pool.
    fn finish_local_call(&mut self, call: u64, completion: &LlmCompletion, now: SimTime) {
        let state = &self.calls[call as usize];
        // First token lands at the end of the prefill phase; clamp for
        // single-token calls whose first token is also the last.
        let released = (completion.started + completion.prefill_time).min(completion.finished);
        self.finished_calls.push(CallRecord {
            session: state.session,
            prefill_replica: state.prefill_replica as u32,
            decode_replica: None,
            arrived: completion.arrived,
            prefill_started: completion.started,
            released,
            decode_submitted: None,
            decode_started: None,
            finished: completion.finished,
            prompt_tokens: completion.prompt_tokens,
            cached_tokens: completion.cached_tokens,
            output_tokens: completion.output_tokens,
            prefill_time: completion.prefill_time,
            decode_time: completion.decode_time,
            transfer_wait: SimDuration::ZERO,
            kv_bytes: 0,
            preemptions: completion.preemptions,
        });
        self.finish_call_in_session(call, completion.output_tokens, now);
    }

    /// A call that prefilled, migrated, and decoded to completion.
    fn finish_migrated_call(&mut self, call: u64, completion: &LlmCompletion, now: SimTime) {
        let state = &self.calls[call as usize];
        let m = state.migration.as_ref().expect("migrated call has a leg");
        debug_assert!(
            completion.prefill_time.is_zero(),
            "decode pools never run prefill steps"
        );
        self.finished_calls.push(CallRecord {
            session: state.session,
            prefill_replica: state.prefill_replica as u32,
            decode_replica: state.decode_replica.map(|d| d as u32),
            arrived: m.arrived,
            prefill_started: m.started,
            released: m.released,
            decode_submitted: state.decode_submitted,
            decode_started: Some(completion.started),
            finished: completion.finished,
            prompt_tokens: m.prompt_tokens,
            cached_tokens: m.cached_tokens,
            output_tokens: completion.output_tokens,
            prefill_time: m.prefill_time,
            decode_time: completion.decode_time,
            transfer_wait: state.transfer_wait,
            kv_bytes: m.kv_bytes,
            preemptions: m.preemptions + completion.preemptions,
        });
        self.finish_call_in_session(call, completion.output_tokens, now);
    }

    /// Session bookkeeping shared by both completion paths.
    fn finish_call_in_session(&mut self, call: u64, output_tokens: u32, now: SimTime) {
        let sid = self.calls[call as usize].session;
        let finished_op = {
            let session = self.sessions[sid as usize].as_mut().expect("live session");
            session.done.insert(call, output_tokens);
            session.done.len() == session.pending.len()
        };
        if finished_op {
            self.finish_llm_op(sid, now);
        }
    }

    /// All LLM calls of the current op completed: advance the session.
    fn finish_llm_op(&mut self, sid: u64, now: SimTime) {
        let session = self.sessions[sid as usize].as_mut().expect("live session");
        let pending = std::mem::take(&mut session.pending);
        let mut done = std::mem::take(&mut session.done);
        let mut outputs = Vec::with_capacity(pending.len());
        for (call, spec) in &pending {
            let tokens = done.remove(call).expect("every pending call completed");
            outputs.push(LlmOutput {
                tokens,
                gen_seed: spec.gen_seed,
            });
        }

        // Chatbot sessions finish after their single call.
        if session.policy.is_none() {
            let session = self.sessions[sid as usize].take().expect("live session");
            self.latencies
                .push(now.saturating_since(session.arrived).as_secs_f64());
            self.completed += 1;
            self.last_finish = self.last_finish.max(now);
            return;
        }

        // LLMCompiler overlapped plan: launch the planned tools with the
        // overlap credit already elapsed during planning.
        if let Some((calls, overlap)) = session.overlap_tools.take() {
            let tools = &self.tools;
            let mut rng = session.rng.fork(now.as_micros() ^ 0x0B);
            let results: Vec<ToolResult> = tools.execute_batch(&calls, &mut rng);
            let wall = results
                .iter()
                .map(|r| r.latency)
                .max()
                .unwrap_or(SimDuration::ZERO);
            let plan_time = now.saturating_since(session.op_start);
            let credit = plan_time.mul_f64(overlap.clamp(0.0, 1.0));
            let extra = wall.saturating_sub(credit);
            session.scheduled_tools = results;
            self.queue.push(now + extra, Event::ToolsDone(sid));
            return;
        }

        let result = OpResult {
            llm: outputs,
            tools: Vec::new(),
        };
        let op = session
            .policy
            .as_mut()
            .expect("agent session")
            .next(&result, &mut session.rng);
        self.dispatch(sid, op, now);
    }

    fn on_tools_done(&mut self, sid: u64, now: SimTime) {
        let session = self.sessions[sid as usize].as_mut().expect("live session");
        let results = std::mem::take(&mut session.scheduled_tools);
        let result = OpResult {
            llm: Vec::new(),
            tools: results,
        };
        let op = session
            .policy
            .as_mut()
            .expect("agent session")
            .next(&result, &mut session.rng);
        self.dispatch(sid, op, now);
    }

    fn kick_all(&mut self, now: SimTime) {
        for p in 0..self.prefill_engines.len() {
            if let Some(end) = self.prefill_engines[p].start_step_if_idle(now) {
                self.queue.push(end, Event::PrefillStep(p));
            }
        }
        for d in 0..self.decode_engines.len() {
            if let Some(end) = self.decode_engines[d].start_step_if_idle(now) {
                self.queue.push(end, Event::DecodeStep(d));
            }
        }
    }

    fn into_report(self) -> DisaggReport {
        let mut latencies: Samples = self.latencies.iter().copied().collect();
        let p50_s = latencies.median();
        let p95_s = latencies.p95();
        let (mut hits, mut lookups) = (0u64, 0u64);
        let mut energy_wh = 0.0;
        let mut preemptions = 0u64;
        let mut prefill_utilization = Vec::with_capacity(self.prefill_engines.len());
        let mut decode_utilization = Vec::with_capacity(self.decode_engines.len());
        for e in &self.prefill_engines {
            let kv = e.kv().stats();
            hits += kv.hit_tokens;
            lookups += kv.hit_tokens + kv.miss_tokens;
            energy_wh += e.metrics().energy_within(self.last_finish).watt_hours();
            preemptions += e.metrics().preemptions;
            prefill_utilization.push(e.metrics().utilization(self.last_finish));
        }
        for e in &self.decode_engines {
            energy_wh += e.metrics().energy_within(self.last_finish).watt_hours();
            preemptions += e.metrics().preemptions;
            decode_utilization.push(e.metrics().utilization(self.last_finish));
        }
        let migrated_calls = self.finished_calls.iter().filter(|c| c.migrated()).count() as u64;
        debug_assert_eq!(migrated_calls, self.transfers.completed());
        DisaggReport {
            offered_qps: self.config.qps,
            prefill_replicas: self.config.prefill_replicas,
            decode_replicas: self.config.decode_replicas,
            completed: self.completed,
            solved: self.solved,
            makespan: SimDuration::from_micros(self.last_finish.as_micros()),
            latencies,
            p50_s,
            p95_s,
            calls: self.finished_calls,
            migrated_calls,
            transferred_bytes: self.transfers.total_bytes(),
            transfer_wait: self.transfers.total_wait(),
            prefill_utilization,
            decode_utilization,
            energy_wh,
            kv_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            preemptions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_gpu::LinkSpec;

    fn react(qps: f64, n: u64) -> DisaggReport {
        DisaggSim::new(DisaggConfig::new(DisaggWorkload::react_hotpotqa(), qps, n).seed(1)).run()
    }

    #[test]
    fn disagg_run_completes_and_migrates() {
        let r = react(0.5, 10);
        assert_eq!(r.completed, 10);
        assert!(r.migrated_calls > 0, "multi-token calls must migrate");
        assert!(r.transferred_bytes > 0);
        assert_eq!(
            r.transferred_bytes,
            r.calls.iter().map(|c| c.kv_bytes).sum::<u64>(),
            "link bytes match per-call KV footprints"
        );
        // Every migrated call's span partitions e2e exactly.
        for c in &r.calls {
            assert_eq!(c.span().total(), c.e2e(), "call of session {}", c.session);
            if c.migrated() {
                assert!(c.span().transfer > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn colocated_mode_never_transfers() {
        let cfg = DisaggConfig::colocated(DisaggWorkload::react_hotpotqa(), 2, 0.5, 10).seed(1);
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 10);
        assert_eq!(r.migrated_calls, 0);
        assert_eq!(r.transferred_bytes, 0);
        assert!(r.decode_utilization.is_empty());
        for c in &r.calls {
            assert!(!c.migrated());
            assert_eq!(c.span().transfer, SimDuration::ZERO);
            assert_eq!(c.span().total(), c.e2e());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = react(0.5, 8);
        let b = react(0.5, 8);
        assert_eq!(a.p95_s.to_bits(), b.p95_s.to_bits());
        assert_eq!(a.transferred_bytes, b.transferred_bytes);
        assert_eq!(a.calls, b.calls);
    }

    #[test]
    fn slower_links_lengthen_ttft() {
        let base = DisaggConfig::new(DisaggWorkload::react_hotpotqa(), 0.5, 10).seed(2);
        let fast = DisaggSim::new(base.clone().link(LinkSpec::nvlink4())).run();
        let slow_spec = LinkSpec {
            name: "slow",
            bandwidth_bytes_per_s: 1e8, // 100 MB/s: painfully slow on purpose
            latency: SimDuration::from_millis(5),
        };
        let slow = DisaggSim::new(base.link(slow_spec)).run();
        let (mut f, mut s) = (fast.ttft(), slow.ttft());
        assert!(
            s.median() > f.median(),
            "slow-link ttft {} vs fast {}",
            s.median(),
            f.median()
        );
        // The extra time is visible in the transfer phase, not smeared
        // into queue/decode.
        let transfer = |r: &DisaggReport| {
            r.phase_totals()
                .iter()
                .find(|(n, _)| *n == "transfer")
                .unwrap()
                .1
        };
        assert!(transfer(&slow) > transfer(&fast) * 10.0);
    }

    #[test]
    fn chatbot_traffic_is_served_too() {
        let cfg = DisaggConfig::new(DisaggWorkload::Chatbot, 1.0, 12).seed(3);
        let r = DisaggSim::new(cfg).run();
        assert_eq!(r.completed, 12);
        assert_eq!(r.calls.len(), 12, "one call per chatbot request");
    }
}
