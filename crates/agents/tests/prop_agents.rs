//! Property-based tests over all agent policies: every policy terminates
//! within a bounded number of ops, emits well-formed operations, respects
//! its budgets, and is deterministic.

use agentsim_agents::{build_agent, AgentConfig, AgentKind, AgentOp, LlmOutput, OpResult};
use agentsim_simkit::SimRng;
use agentsim_tools::{ToolExecutor, ToolResult};
use agentsim_workloads::{Benchmark, TaskGenerator};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = AgentKind> {
    prop::sample::select(AgentKind::ALL.to_vec())
}

fn benchmark_strategy() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::AGENTIC.to_vec())
}

fn config_strategy() -> impl Strategy<Value = AgentConfig> {
    (1u32..12, 1u32..5, 1u32..10, 1u32..12, 0u32..10).prop_map(
        |(max_iterations, max_trials, lats_children, lats_iterations, fewshot)| {
            AgentConfig::default_8b()
                .with_max_iterations(max_iterations)
                .with_max_trials(max_trials)
                .with_lats_children(lats_children)
                .with_lats_iterations(lats_iterations)
                .with_fewshot(fewshot)
        },
    )
}

/// Executes the policy against stub results, counting ops. Panics on
/// malformed ops.
fn execute(
    kind: AgentKind,
    benchmark: Benchmark,
    config: AgentConfig,
    task_idx: u64,
    seed: u64,
) -> (usize, usize, bool, u32) {
    let task = TaskGenerator::new(benchmark, seed).task(task_idx);
    let mut agent = build_agent(kind, &task, config);
    let mut rng = SimRng::seed_from(seed ^ 0xA6E2);
    let tools = ToolExecutor::new();
    let mut tool_rng = rng.fork(1);
    let mut llm_calls = 0usize;
    let mut tool_calls = 0usize;
    let mut last = OpResult::empty();
    for _ in 0..20_000 {
        match agent.next(&last, &mut rng) {
            AgentOp::Llm(spec) => {
                assert!(!spec.prompt.is_empty(), "empty prompt");
                assert!(spec.out_tokens > 0, "zero output");
                assert_eq!(
                    spec.breakdown.input_total() as usize,
                    spec.prompt.len(),
                    "breakdown must account for every prompt token"
                );
                llm_calls += 1;
                last = OpResult::of_llm(spec.out_tokens, spec.gen_seed);
            }
            AgentOp::LlmBatch(specs) => {
                assert!(!specs.is_empty(), "empty batch");
                llm_calls += specs.len();
                last = OpResult {
                    llm: specs
                        .iter()
                        .map(|s| {
                            assert!(!s.prompt.is_empty());
                            LlmOutput {
                                tokens: s.out_tokens,
                                gen_seed: s.gen_seed,
                            }
                        })
                        .collect(),
                    tools: Vec::new(),
                };
            }
            AgentOp::Tools(calls) => {
                assert!(!calls.is_empty(), "empty tool batch");
                for c in &calls {
                    assert!(
                        benchmark.tools().contains(&c.kind),
                        "{kind} used {} which {benchmark} does not expose",
                        c.kind
                    );
                }
                tool_calls += calls.len();
                let results: Vec<ToolResult> = calls
                    .iter()
                    .map(|c| tools.execute(c, &mut tool_rng))
                    .collect();
                last = OpResult {
                    llm: Vec::new(),
                    tools: results,
                };
            }
            AgentOp::OverlappedPlan {
                llm,
                tools: calls,
                overlap,
            } => {
                assert!((0.0..=1.0).contains(&overlap));
                assert!(!calls.is_empty());
                llm_calls += 1;
                tool_calls += calls.len();
                let results: Vec<ToolResult> = calls
                    .iter()
                    .map(|c| tools.execute(c, &mut tool_rng))
                    .collect();
                last = OpResult {
                    llm: vec![LlmOutput {
                        tokens: llm.out_tokens,
                        gen_seed: llm.gen_seed,
                    }],
                    tools: results,
                };
            }
            AgentOp::Finish(outcome) => {
                return (llm_calls, tool_calls, outcome.solved, outcome.iterations);
            }
        }
    }
    panic!("{kind} did not finish within 20,000 ops");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_policy_terminates_with_well_formed_ops(
        kind in kind_strategy(),
        benchmark in benchmark_strategy(),
        config in config_strategy(),
        task_idx in 0u64..30,
        seed in 0u64..1000,
    ) {
        prop_assume!(kind.supports(benchmark));
        let (llm, tools, _, _) = execute(kind, benchmark, config, task_idx, seed);
        prop_assert!(llm >= 1, "at least one LLM call");
        if kind == AgentKind::Cot {
            prop_assert_eq!(llm, 1);
            prop_assert_eq!(tools, 0);
        } else {
            prop_assert!(tools >= 1, "tool agents must call tools");
        }
    }

    #[test]
    fn policies_are_deterministic(
        kind in kind_strategy(),
        benchmark in benchmark_strategy(),
        task_idx in 0u64..10,
        seed in 0u64..100,
    ) {
        prop_assume!(kind.supports(benchmark));
        let config = AgentConfig::default_8b();
        let a = execute(kind, benchmark, config, task_idx, seed);
        let b = execute(kind, benchmark, config, task_idx, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn react_respects_iteration_budget(
        budget in 1u32..12,
        task_idx in 0u64..20,
        seed in 0u64..100,
    ) {
        let config = AgentConfig::default_8b().with_max_iterations(budget);
        let (llm, tools, _, iterations) =
            execute(AgentKind::React, Benchmark::HotpotQa, config, task_idx, seed);
        prop_assert!(tools <= budget as usize);
        prop_assert!(iterations <= budget);
        prop_assert!(llm <= budget as usize + 1, "thoughts + one answer");
    }

    #[test]
    fn reflexion_bounded_by_trials(
        trials in 1u32..5,
        task_idx in 0u64..20,
        seed in 0u64..100,
    ) {
        let config = AgentConfig::default_8b().with_max_trials(trials).with_max_iterations(5);
        let (llm, _, _, _) =
            execute(AgentKind::Reflexion, Benchmark::HotpotQa, config, task_idx, seed);
        // Per trial: <= 5 thoughts + 1 answer; plus <= trials-1 reflections.
        let bound = trials as usize * 6 + trials as usize;
        prop_assert!(llm <= bound, "{llm} > {bound}");
    }

    #[test]
    fn lats_call_volume_scales_with_width_and_budget(
        children in 1u32..10,
        iterations in 1u32..10,
        task_idx in 0u64..10,
    ) {
        let config = AgentConfig::default_8b()
            .with_lats_children(children)
            .with_lats_iterations(iterations);
        let (llm, _, _, iters) =
            execute(AgentKind::Lats, Benchmark::HotpotQa, config, task_idx, 3);
        prop_assert!(iters <= iterations);
        // Each iteration: children expansions + children evaluations +
        // up to 3 rollout actions; plus a bounded number of answer
        // attempts.
        let bound = (iterations as usize) * (2 * children as usize + 3) + 4;
        prop_assert!(llm <= bound, "{llm} > {bound}");
    }
}
