//! The cognition model: a calibrated stochastic substitute for what real
//! LLM generations *mean*.
//!
//! The paper's systems results depend on call graphs, token counts and
//! timing; accuracy enters only through the Section V/VI trade-off
//! curves. This module supplies those semantics:
//!
//! * each task needs `hops` pieces of **evidence**; a reasoning+tool
//!   iteration gathers one with [`Cognition::gather_prob`],
//! * a final answer is correct when the agent's **capability** exceeds
//!   the task's latent **aptitude threshold** (a per-task uniform draw).
//!   Capability grows with model quality, few-shot prompting, gathered
//!   evidence, reflection depth, and search breadth — with saturating
//!   returns, which is what produces the paper's diminishing-returns
//!   curves (Fig. 19–22),
//! * output lengths per call role reproduce the Fig. 8 token statistics.
//!
//! Using a fixed per-task threshold (rather than independent retry
//! coin-flips) captures the empirical fact that retries are correlated:
//! a task the model fundamentally cannot solve stays unsolved no matter
//! how many times the same capability re-attempts it.

use agentsim_simkit::dist::{LogNormal, Sample};
use agentsim_simkit::rng::splitmix64;
use agentsim_simkit::SimRng;
use agentsim_workloads::{Benchmark, Task};

use crate::action::OutputKind;
use crate::catalog::AgentKind;
use crate::config::AgentConfig;

/// Calibrated cognitive model of a backend LLM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cognition {
    /// Model quality in `(0, 1)`.
    pub quality: f64,
}

impl Cognition {
    /// Calibrated quality of Llama-3.1-8B-Instruct.
    pub const QUALITY_8B: f64 = 0.55;
    /// Calibrated quality of Llama-3.1-70B-Instruct.
    pub const QUALITY_70B: f64 = 0.80;

    /// Creates a cognition model with the given quality.
    ///
    /// # Panics
    ///
    /// Panics if `quality` is outside `(0, 1)`.
    pub fn new(quality: f64) -> Self {
        assert!(
            quality > 0.0 && quality < 1.0,
            "model quality must be in (0, 1), got {quality}"
        );
        Cognition { quality }
    }

    /// Few-shot prompting factor (the paper's Fig. 20 shape): rises
    /// steeply for the first few examples, saturates around 5–6, and
    /// degrades slowly past that as the prompt exceeds the model's
    /// comfortable range.
    pub fn fewshot_factor(n: u32) -> f64 {
        let n = n as f64;
        0.75 + 0.45 * (1.0 - (-n / 2.2).exp()) - 0.035 * (n - 6.0).max(0.0)
    }

    /// Reflection boost after `r` reflections (Fig. 21a/b): saturating.
    pub fn reflection_boost(r: u32) -> f64 {
        1.0 + 0.25 * (1.0 - (-(r as f64) / 1.5).exp())
    }

    /// Probability that one reasoning + tool iteration gathers a missing
    /// piece of evidence.
    pub fn gather_prob(&self, task: &Task, fewshot: u32, boost: f64) -> f64 {
        let base = self.quality
            * Self::fewshot_factor(fewshot)
            * (1.55 - task.difficulty)
            * boost
            * tool_effectiveness(task.benchmark);
        base.clamp(0.05, 0.95)
    }

    /// The agent's capability score for a final answer attempt.
    ///
    /// `breadth` is the effective number of alternative reasoning paths
    /// the agent can select among (1 for linear agents, the expansion
    /// width for LATS) — parallel scaling raises capability with
    /// diminishing returns and is capped by a task-difficulty ceiling.
    pub fn answer_capability(
        &self,
        task: &Task,
        fewshot: u32,
        evidence_frac: f64,
        boost: f64,
        breadth: u32,
    ) -> f64 {
        let base = self.quality * Self::fewshot_factor(fewshot) * (1.30 - 0.90 * task.difficulty);
        let evid = 0.20 + 0.80 * evidence_frac.clamp(0.0, 1.0);
        let raw = (base * evid * boost).clamp(0.0, 0.97);
        let exponent = 1.0 + 0.8 * ((breadth.max(1) - 1) as f64).powf(0.7);
        let multi = 1.0 - (1.0 - raw).powf(exponent);
        multi.min(self.ceiling(task))
    }

    /// Capability of single-call Chain-of-Thought (no tools): internal
    /// reasoning only, penalized on knowledge-intensive benchmarks.
    pub fn cot_capability(&self, task: &Task, fewshot: u32) -> f64 {
        let no_tool = match task.benchmark {
            Benchmark::HotpotQa => 0.80,
            Benchmark::WebShop => 0.0, // cannot interact at all
            Benchmark::Math => 0.85,
            Benchmark::HumanEval => 0.75,
            Benchmark::ShareGpt => 1.0,
        };
        let base =
            self.quality * Self::fewshot_factor(fewshot) * (1.0 - 0.85 * task.difficulty) * no_tool;
        base.clamp(0.0, self.ceiling(task))
    }

    /// Capability of static Best-of-N sampling: `samples` independent
    /// internal-reasoning attempts with best-answer selection. Saturates
    /// well below tool-augmented agents on knowledge tasks, because no
    /// amount of resampling retrieves missing evidence.
    pub fn static_capability(&self, task: &Task, fewshot: u32, samples: u32) -> f64 {
        let base = self.cot_capability(task, fewshot);
        let exponent = 1.0 + 0.8 * ((samples.max(1) - 1) as f64).powf(0.7);
        let multi = 1.0 - (1.0 - base.min(0.97)).powf(exponent);
        // Static sampling cannot exceed what internal knowledge supports:
        // a lower ceiling than the agentic one.
        multi.min(self.ceiling(task) * 0.75)
    }

    /// The best achievable correctness on this task (ambiguity,
    /// evaluation noise): no amount of compute exceeds it.
    pub fn ceiling(&self, task: &Task) -> f64 {
        0.97 - 0.25 * task.difficulty
    }

    /// The task's latent aptitude threshold in `[0, 1)`: an answer
    /// attempt succeeds iff its capability exceeds this. Deterministic
    /// per task, shared by all agents (hard tasks are hard for everyone).
    pub fn aptitude(task: &Task) -> f64 {
        let h = splitmix64(task.rng_key() ^ 0xA97_17D0E);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether an answer attempt at `capability` solves `task`.
    pub fn solves(task: &Task, capability: f64) -> bool {
        capability > Self::aptitude(task)
    }

    /// LATS value estimate for a node (used by UCT selection): evidence
    /// progress plus bounded evaluation noise.
    pub fn node_value(&self, evidence_frac: f64, rng: &mut SimRng) -> f64 {
        let noise_scale = 0.35 * (1.0 - self.quality);
        (evidence_frac + rng.range_f64(-noise_scale, noise_scale)).clamp(0.0, 1.0)
    }

    /// The best-case (full-evidence, full-boost) capability `config` can
    /// reach on `task` running agent paradigm `kind`.
    ///
    /// This is the cascade router's escalation predictor: the bound is
    /// deterministic — no evidence-gathering randomness — so if even it
    /// falls short of the task's [`Cognition::aptitude`] threshold, every
    /// attempt at this quality is wasted work and the turn should start
    /// on a stronger tier instead.
    pub fn best_case_capability(kind: AgentKind, config: &AgentConfig, task: &Task) -> f64 {
        let c = Cognition::new(config.model_quality);
        match kind {
            AgentKind::Cot => c.cot_capability(task, config.fewshot),
            AgentKind::BestOfN => c.static_capability(task, config.fewshot, config.max_trials),
            AgentKind::React | AgentKind::LlmCompiler => {
                c.answer_capability(task, config.fewshot, 1.0, 1.0, 1)
            }
            AgentKind::Reflexion => {
                let boost = Self::reflection_boost(config.max_trials.saturating_sub(1));
                c.answer_capability(task, config.fewshot, 1.0, boost, 1)
            }
            AgentKind::Lats => {
                c.answer_capability(task, config.fewshot, 1.0, 1.0, config.lats_children)
            }
        }
    }
}

/// How effective the benchmark's tools are at yielding evidence per call.
fn tool_effectiveness(benchmark: Benchmark) -> f64 {
    match benchmark {
        Benchmark::HotpotQa => 1.00,
        Benchmark::WebShop => 0.95,
        Benchmark::Math => 1.05,
        Benchmark::HumanEval => 1.00,
        Benchmark::ShareGpt => 1.0,
    }
}

/// Samples the output length (tokens) for a call of `kind` by `agent`.
///
/// Calibration anchors (paper Fig. 8): CoT produces one long output
/// (~300+ tokens); agent steps are short thought+action snippets; LATS
/// emits many short samples; planners emit medium-length DAGs.
pub fn sample_output_tokens(agent: AgentKind, kind: OutputKind, rng: &mut SimRng) -> u32 {
    let (mean, cv): (f64, f64) = match (agent, kind) {
        (AgentKind::Cot, OutputKind::Answer) => (340.0, 0.35),
        (_, OutputKind::Action) => (80.0, 0.30),
        (_, OutputKind::Plan) => (150.0, 0.30),
        (_, OutputKind::Reflection) => (130.0, 0.30),
        (_, OutputKind::Evaluation) => (25.0, 0.25),
        (_, OutputKind::Answer) => (50.0, 0.30),
    };
    LogNormal::from_mean_cv(mean, cv)
        .sample_count(rng)
        .clamp(4, 2048) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_workloads::TaskGenerator;

    fn task(benchmark: Benchmark, difficulty: f64) -> Task {
        Task {
            benchmark,
            id: 1,
            difficulty,
            hops: 3,
            user_tokens: 30,
            user_seed: 77,
        }
    }

    #[test]
    fn fewshot_rises_then_declines() {
        let f0 = Cognition::fewshot_factor(0);
        let f4 = Cognition::fewshot_factor(4);
        let f6 = Cognition::fewshot_factor(6);
        let f16 = Cognition::fewshot_factor(16);
        assert!(f4 > f0);
        assert!(f6 >= f4);
        assert!(f16 < f6, "excessive prompting regresses (Fig. 20)");
    }

    #[test]
    fn reflection_boost_saturates() {
        let b1 = Cognition::reflection_boost(1) - 1.0;
        let b2 = Cognition::reflection_boost(2) - Cognition::reflection_boost(1);
        let b8 = Cognition::reflection_boost(8) - Cognition::reflection_boost(7);
        assert!(b1 > b2 && b2 > b8, "diminishing returns");
        assert!(Cognition::reflection_boost(100) < 1.26);
    }

    #[test]
    fn quality_orders_everything() {
        let small = Cognition::new(Cognition::QUALITY_8B);
        let large = Cognition::new(Cognition::QUALITY_70B);
        let t = task(Benchmark::HotpotQa, 0.55);
        assert!(large.gather_prob(&t, 4, 1.0) > small.gather_prob(&t, 4, 1.0));
        assert!(
            large.answer_capability(&t, 4, 1.0, 1.0, 1)
                > small.answer_capability(&t, 4, 1.0, 1.0, 1)
        );
        assert!(large.cot_capability(&t, 4) > small.cot_capability(&t, 4));
    }

    #[test]
    fn difficulty_hurts() {
        let c = Cognition::new(0.6);
        let easy = task(Benchmark::Math, 0.2);
        let hard = task(Benchmark::Math, 0.8);
        assert!(c.gather_prob(&easy, 4, 1.0) > c.gather_prob(&hard, 4, 1.0));
        assert!(
            c.answer_capability(&easy, 4, 1.0, 1.0, 1) > c.answer_capability(&hard, 4, 1.0, 1.0, 1)
        );
        assert!(c.ceiling(&easy) > c.ceiling(&hard));
    }

    #[test]
    fn breadth_raises_capability_with_diminishing_returns() {
        let c = Cognition::new(Cognition::QUALITY_8B);
        let t = task(Benchmark::HotpotQa, 0.55);
        let caps: Vec<f64> = [1, 2, 4, 8, 16]
            .iter()
            .map(|&b| c.answer_capability(&t, 4, 1.0, 1.0, b))
            .collect();
        for w in caps.windows(2) {
            assert!(w[1] >= w[0], "wider search never hurts");
        }
        let gain_early = caps[1] - caps[0];
        let gain_late = caps[4] - caps[3];
        assert!(gain_early > gain_late, "diminishing returns in width");
        assert!(caps[4] <= c.ceiling(&t) + 1e-12);
    }

    #[test]
    fn evidence_matters() {
        let c = Cognition::new(0.6);
        let t = task(Benchmark::HotpotQa, 0.5);
        assert!(
            c.answer_capability(&t, 4, 1.0, 1.0, 1)
                > c.answer_capability(&t, 4, 0.0, 1.0, 1) + 0.15
        );
    }

    #[test]
    fn cot_cannot_shop() {
        let c = Cognition::new(0.9);
        assert_eq!(c.cot_capability(&task(Benchmark::WebShop, 0.3), 4), 0.0);
    }

    #[test]
    fn aptitude_is_deterministic_and_uniform_ish() {
        let g = TaskGenerator::new(Benchmark::HotpotQa, 3);
        let n = 2_000;
        let mean: f64 = g.tasks(n).map(|t| Cognition::aptitude(&t)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
        let t = g.task(0);
        assert_eq!(Cognition::aptitude(&t), Cognition::aptitude(&t));
    }

    #[test]
    fn lats_8b_capability_reaches_paper_band() {
        // Table III: LATS/8B HotpotQA accuracy 80% vs Reflexion/8B 38%.
        // Capability at full evidence with width 5 should be well above
        // the linear agents'.
        let c = Cognition::new(Cognition::QUALITY_8B);
        let t = task(Benchmark::HotpotQa, 0.55);
        let lats = c.answer_capability(&t, 4, 1.0, Cognition::reflection_boost(1), 5);
        let linear = c.answer_capability(&t, 4, 1.0, Cognition::reflection_boost(2), 1);
        assert!(lats > linear + 0.2, "lats {lats} vs linear {linear}");
    }

    #[test]
    fn output_lengths_match_fig8_shape() {
        let mut rng = SimRng::seed_from(4);
        let n = 3_000;
        let mean = |agent, kind: OutputKind, rng: &mut SimRng| {
            (0..n)
                .map(|_| sample_output_tokens(agent, kind, rng) as f64)
                .sum::<f64>()
                / n as f64
        };
        let cot = mean(AgentKind::Cot, OutputKind::Answer, &mut rng);
        let act = mean(AgentKind::React, OutputKind::Action, &mut rng);
        let eval = mean(AgentKind::Lats, OutputKind::Evaluation, &mut rng);
        assert!(cot > 4.0 * act, "CoT single long output: {cot} vs {act}");
        assert!(act > eval, "actions longer than evaluations");
    }

    #[test]
    #[should_panic(expected = "model quality")]
    fn quality_validated() {
        let _ = Cognition::new(1.5);
    }

    #[test]
    fn best_case_capability_orders_tiers_and_bounds_attempts() {
        let t = task(Benchmark::HotpotQa, 0.55);
        let cheap = AgentConfig::default_8b();
        let premium = AgentConfig::default_70b();
        for kind in [
            AgentKind::Cot,
            AgentKind::React,
            AgentKind::Reflexion,
            AgentKind::Lats,
            AgentKind::LlmCompiler,
            AgentKind::BestOfN,
        ] {
            let lo = Cognition::best_case_capability(kind, &cheap, &t);
            let hi = Cognition::best_case_capability(kind, &premium, &t);
            // Breadth-amplified kinds (LATS) can saturate both tiers at
            // the task's capability ceiling; the bound must still never
            // order the tiers backwards.
            if kind == AgentKind::Lats {
                assert!(hi >= lo, "{kind:?}: 70B bound {hi} must not trail 8B {lo}");
            } else {
                assert!(hi > lo, "{kind:?}: 70B bound {hi} must exceed 8B {lo}");
            }
        }
        // The bound really is an upper bound on a full-evidence attempt.
        let c = Cognition::new(cheap.model_quality);
        let react = Cognition::best_case_capability(AgentKind::React, &cheap, &t);
        assert!(react >= c.answer_capability(&t, cheap.fewshot, 1.0, 1.0, 1) - 1e-12);
    }
}
