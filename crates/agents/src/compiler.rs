//! LLMCompiler: DAG planning with streamed, parallel tool execution.
//!
//! A planner call emits a dependency graph of tool calls; as the plan
//! streams out, tool calls are dispatched asynchronously — so tool
//! execution overlaps the tail of the planning call (the paper's Fig. 3e
//! and the ~18% overlap it measures). A joiner call then either answers
//! or triggers a replan.
//!
//! On benchmarks whose tool steps are strongly interdependent (WebShop:
//! you must see a page before clicking it), DAG-style planning issues
//! unnecessary calls and gathers evidence less efficiently — reproducing
//! the paper's finding that LLMCompiler beats ReAct on HotpotQA but loses
//! on WebShop.

use agentsim_simkit::SimRng;
use agentsim_tools::ToolCall;
use agentsim_workloads::{Benchmark, Task};

use crate::action::{AgentOp, OpResult, OutputKind, TaskOutcome};
use crate::catalog::AgentKind;
use crate::cognition::Cognition;
use crate::config::AgentConfig;
use crate::policy::AgentPolicy;
use crate::react::AgentInner;

/// Fraction of planner latency overlapped with tool execution.
pub const PLAN_OVERLAP: f64 = 0.6;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Plan,
    AwaitPlanAndTools,
    AwaitJoiner,
    Done,
}

/// The LLMCompiler agent.
#[derive(Debug)]
pub struct LlmCompiler {
    inner: AgentInner,
    phase: Phase,
    evidence: u32,
    plans: u32,
    tool_calls_made: u32,
}

impl LlmCompiler {
    /// Creates an LLMCompiler agent for `task`.
    pub fn new(task: &Task, config: AgentConfig) -> Self {
        LlmCompiler {
            inner: AgentInner::new(AgentKind::LlmCompiler, task, config),
            phase: Phase::Plan,
            evidence: 0,
            plans: 0,
            tool_calls_made: 0,
        }
    }

    /// How much the DAG planner suffers on this benchmark from step
    /// interdependence (1.0 = none).
    fn dag_effectiveness(benchmark: Benchmark) -> f64 {
        match benchmark {
            Benchmark::HotpotQa => 1.0, // independent lookups parallelize well
            Benchmark::WebShop => 0.55, // must observe pages before clicking
            _ => 0.8,
        }
    }

    /// Tool calls the planner schedules this round. Interdependent
    /// benchmarks get extra speculative calls (the paper's "unnecessary
    /// tool invocations").
    fn planned_tools(&self, rng: &mut SimRng) -> Vec<ToolCall> {
        let missing = self.inner.task.hops.saturating_sub(self.evidence).max(1);
        let speculative = if Self::dag_effectiveness(self.inner.task.benchmark) < 0.9 {
            2
        } else {
            1
        };
        let count = (missing + speculative).min(6);
        (0..count).map(|_| self.inner.pick_tool(rng)).collect()
    }

    fn evidence_frac(&self) -> f64 {
        self.evidence as f64 / self.inner.task.hops.max(1) as f64
    }
}

impl AgentPolicy for LlmCompiler {
    fn kind(&self) -> AgentKind {
        AgentKind::LlmCompiler
    }

    fn next(&mut self, last: &OpResult, rng: &mut SimRng) -> AgentOp {
        match self.phase {
            Phase::Plan => {
                self.plans += 1;
                self.phase = Phase::AwaitPlanAndTools;
                let llm = self
                    .inner
                    .llm_call(OutputKind::Plan, AgentKind::LlmCompiler, rng);
                let tools = self.planned_tools(rng);
                self.tool_calls_made += tools.len() as u32;
                AgentOp::OverlappedPlan {
                    llm,
                    tools,
                    overlap: PLAN_OVERLAP,
                }
            }
            Phase::AwaitPlanAndTools => {
                let plan = last.llm.first().expect("planner result");
                self.inner.ctx.append_llm_output(plan.gen_seed, plan.tokens);
                let eff = Self::dag_effectiveness(self.inner.task.benchmark);
                let p = self.inner.cognition.gather_prob(
                    &self.inner.task,
                    self.inner.config.fewshot,
                    1.0,
                ) * eff;
                for obs in &last.tools {
                    self.inner.ctx.append_tool(obs);
                    if !obs.failed && self.evidence < self.inner.task.hops && rng.chance(p) {
                        self.evidence += 1;
                    }
                }
                self.phase = Phase::AwaitJoiner;
                AgentOp::Llm(
                    self.inner
                        .llm_call(OutputKind::Answer, AgentKind::LlmCompiler, rng),
                )
            }
            Phase::AwaitJoiner => {
                let out = last.llm.first().expect("joiner result");
                self.inner.ctx.append_llm_output(out.gen_seed, out.tokens);
                let incomplete = self.evidence < self.inner.task.hops;
                if incomplete && self.plans <= self.inner.config.max_replans {
                    // Joiner decides to replan for the missing evidence.
                    self.phase = Phase::Plan;
                    return self.next(&OpResult::empty(), rng);
                }
                // Structured planning gives a small answer-quality edge
                // where the DAG matches the task structure.
                let plan_factor =
                    1.0 + 0.10 * (Self::dag_effectiveness(self.inner.task.benchmark) - 0.55);
                let capability = self.inner.cognition.answer_capability(
                    &self.inner.task,
                    self.inner.config.fewshot,
                    self.evidence_frac(),
                    plan_factor,
                    1,
                );
                self.phase = Phase::Done;
                AgentOp::Finish(TaskOutcome {
                    solved: Cognition::solves(&self.inner.task, capability),
                    iterations: self.plans,
                })
            }
            Phase::Done => panic!("LLMCompiler agent resumed after Finish"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::react::React;
    use crate::testutil::run_to_completion;
    use agentsim_workloads::TaskGenerator;

    #[test]
    fn uses_overlapped_planning() {
        let task = TaskGenerator::new(Benchmark::HotpotQa, 1).task(0);
        let mut agent = LlmCompiler::new(&task, AgentConfig::default());
        let mut rng = SimRng::seed_from(2);
        match agent.next(&OpResult::empty(), &mut rng) {
            AgentOp::OverlappedPlan { tools, overlap, .. } => {
                assert!(!tools.is_empty());
                assert!((0.0..=1.0).contains(&overlap));
            }
            other => panic!("expected OverlappedPlan, got {other:?}"),
        }
    }

    #[test]
    fn fewer_llm_calls_than_react() {
        // Fig. 4: LLMCompiler batches tool calls per plan, so it needs
        // fewer LLM invocations than step-by-step ReAct.
        let g = TaskGenerator::new(Benchmark::HotpotQa, 2);
        let (mut compiler_calls, mut react_calls) = (0usize, 0usize);
        for (i, task) in g.tasks(40).enumerate() {
            let mut c = LlmCompiler::new(&task, AgentConfig::default());
            compiler_calls += run_to_completion(&mut c, i as u64).llm_calls;
            let mut r = React::new(&task, AgentConfig::default());
            react_calls += run_to_completion(&mut r, i as u64).llm_calls;
        }
        assert!(
            compiler_calls < react_calls,
            "compiler {compiler_calls} vs react {react_calls}"
        );
    }

    #[test]
    fn webshop_wastes_tool_calls() {
        // The paper: DAG planning issues unnecessary invocations on
        // interdependent tasks.
        let g_shop = TaskGenerator::new(Benchmark::WebShop, 3);
        let g_hot = TaskGenerator::new(Benchmark::HotpotQa, 3);
        let (mut shop_tools, mut shop_hops) = (0u32, 0u32);
        let (mut hot_tools, mut hot_hops) = (0u32, 0u32);
        for (i, task) in g_shop.tasks(40).enumerate() {
            let mut c = LlmCompiler::new(&task, AgentConfig::default());
            shop_tools += run_to_completion(&mut c, i as u64).tool_calls as u32;
            shop_hops += task.hops;
        }
        for (i, task) in g_hot.tasks(40).enumerate() {
            let mut c = LlmCompiler::new(&task, AgentConfig::default());
            hot_tools += run_to_completion(&mut c, i as u64).tool_calls as u32;
            hot_hops += task.hops;
        }
        let shop_ratio = shop_tools as f64 / shop_hops as f64;
        let hot_ratio = hot_tools as f64 / hot_hops as f64;
        assert!(
            shop_ratio > hot_ratio,
            "WebShop {shop_ratio} vs HotpotQA {hot_ratio} tools/hop"
        );
    }

    #[test]
    fn beats_react_accuracy_on_hotpotqa() {
        let g = TaskGenerator::new(Benchmark::HotpotQa, 4);
        let n = 250;
        let (mut comp_ok, mut react_ok) = (0u32, 0u32);
        for (i, task) in g.tasks(n).enumerate() {
            let mut c = LlmCompiler::new(&task, AgentConfig::default());
            comp_ok += run_to_completion(&mut c, i as u64).outcome.solved as u32;
            let mut r = React::new(&task, AgentConfig::default());
            react_ok += run_to_completion(&mut r, i as u64).outcome.solved as u32;
        }
        assert!(
            comp_ok + 5 >= react_ok,
            "compiler {comp_ok} vs react {react_ok} (should be competitive or better)"
        );
    }

    #[test]
    fn replans_are_bounded() {
        let g = TaskGenerator::new(Benchmark::WebShop, 5);
        for (i, task) in g.tasks(30).enumerate() {
            let cfg = AgentConfig::default();
            let mut agent = LlmCompiler::new(&task, cfg);
            let trace = run_to_completion(&mut agent, i as u64);
            // plans <= 1 + max_replans, each plan = 1 planner + 1 joiner.
            assert!(trace.llm_calls <= 2 * (1 + cfg.max_replans as usize));
        }
    }
}
