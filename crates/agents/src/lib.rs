//! AI agent workflow state machines.
//!
//! Implements the five agent frameworks the paper characterizes (its
//! Table I):
//!
//! | agent | reasoning | tool use | reflection | tree search | planning |
//! |---|---|---|---|---|---|
//! | [`cot::Cot`] | ✓ | | | | |
//! | [`react::React`] | ✓ | ✓ | | | |
//! | [`reflexion::Reflexion`] | ✓ | ✓ | ✓ | | |
//! | [`lats::Lats`] | ✓ | ✓ | ✓ | ✓ | |
//! | [`compiler::LlmCompiler`] | ✓ | ✓ | ✓ | | ✓ |
//!
//! An agent is an [`AgentPolicy`]: a state machine that, given the result
//! of its previous operation, emits the next [`AgentOp`] — an LLM call, a
//! batch of parallel LLM calls, tool invocations, an overlapped
//! plan-and-execute (LLMCompiler), or `Finish`. A *driver* (the
//! `agentsim-serving` crate) executes ops against the simulated engine
//! and tools and feeds results back.
//!
//! Semantic outcomes (did this step find evidence? is the answer right?)
//! come from the [`cognition`] module: a calibrated stochastic model in
//! which each task needs `hops` pieces of evidence and step success
//! depends on model quality, few-shot prompting, reflection depth and
//! search width. The calibration targets are the paper's headline
//! numbers; see `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use agentsim_agents::{AgentConfig, AgentKind, OpResult, build_agent};
//! use agentsim_workloads::{Benchmark, TaskGenerator};
//! use agentsim_simkit::SimRng;
//!
//! let task = TaskGenerator::new(Benchmark::HotpotQa, 1).task(0);
//! let mut agent = build_agent(AgentKind::React, &task, AgentConfig::default());
//! let mut rng = SimRng::seed_from(7);
//! let first = agent.next(&OpResult::empty(), &mut rng);
//! // ReAct always starts by thinking (an LLM call).
//! assert!(matches!(first, agentsim_agents::AgentOp::Llm(_)));
//! ```

pub mod action;
pub mod bestofn;
pub mod catalog;
pub mod cognition;
pub mod compiler;
pub mod config;
pub mod context;
pub mod cot;
pub mod lats;
pub mod policy;
pub mod react;
pub mod reflexion;
#[cfg(test)]
pub(crate) mod testutil;

pub use action::{AgentOp, LlmCallSpec, LlmOutput, OpResult, OutputKind, TaskOutcome};
pub use bestofn::BestOfN;
pub use catalog::AgentKind;
pub use cognition::Cognition;
pub use config::AgentConfig;
pub use context::{ContextBreakdown, ContextTracker};
pub use policy::{build_agent, AgentPolicy};
