//! LATS: Language Agent Tree Search (MCTS over reasoning/action paths).
//!
//! Each MCTS iteration selects a node by UCT, expands it with
//! `lats_children` *parallel* LLM calls (parallel test-time scaling),
//! executes the children's tool calls concurrently, evaluates each child
//! with a further LLM call, and backpropagates values. A node whose
//! evidence is complete attempts an answer; failures mark the branch
//! exhausted and search continues (the reflection element of LATS).
//!
//! Per the paper's Fig. 8, a LATS call's input context contains only the
//! root-to-node *path*, not the full interaction history — node contexts
//! here are built exactly that way, which is also why parallel siblings
//! share long prompt prefixes (its Fig. 12 prefix-caching win).

use agentsim_simkit::SimRng;
use agentsim_workloads::Task;

use crate::action::{AgentOp, LlmCallSpec, OpResult, OutputKind, TaskOutcome};
use crate::catalog::AgentKind;
use crate::cognition::{sample_output_tokens, Cognition};
use crate::config::AgentConfig;
use crate::context::ContextTracker;
use crate::policy::{AgentPolicy, SeedSeq};

#[derive(Debug)]
struct Node {
    parent: Option<usize>,
    depth: u32,
    evidence: u32,
    value: f64,
    visits: u32,
    exhausted: bool,
    ctx: ContextTracker,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Select,
    AwaitExpansion,
    AwaitTools,
    AwaitEvals,
    AwaitRolloutAction,
    AwaitRolloutTool,
    AwaitAnswer,
    Done,
}

/// Maximum simulation (rollout) steps per MCTS iteration.
const ROLLOUT_DEPTH: u32 = 3;

/// The LATS agent.
#[derive(Debug)]
pub struct Lats {
    task: Task,
    config: AgentConfig,
    cognition: Cognition,
    seeds: SeedSeq,
    nodes: Vec<Node>,
    phase: Phase,
    selected: usize,
    pending_children: Vec<usize>,
    iterations: u32,
    failed_answers: u32,
    answering_node: usize,
    total_visits: u32,
    rollout_node: usize,
    rollout_steps: u32,
}

impl Lats {
    /// Creates a LATS agent for `task`.
    pub fn new(task: &Task, config: AgentConfig) -> Self {
        let root = Node {
            parent: None,
            depth: 0,
            evidence: 0,
            value: 0.0,
            visits: 0,
            exhausted: false,
            ctx: ContextTracker::new(AgentKind::Lats.tag(), task, config.fewshot),
        };
        Lats {
            cognition: Cognition::new(config.model_quality),
            seeds: SeedSeq::new(task, AgentKind::Lats.tag()),
            task: task.clone(),
            config,
            nodes: vec![root],
            phase: Phase::Select,
            selected: 0,
            pending_children: Vec::new(),
            iterations: 0,
            failed_answers: 0,
            answering_node: 0,
            total_visits: 0,
            rollout_node: 0,
            rollout_steps: 0,
        }
    }

    /// UCT selection over non-exhausted nodes.
    fn select_node(&self) -> usize {
        let c = 0.35;
        let ln_total = ((self.total_visits + 1) as f64).ln();
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.exhausted || n.depth >= self.config.max_iterations {
                continue;
            }
            let score = n.value + c * (ln_total / (n.visits + 1) as f64).sqrt();
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    fn expansion_specs(&mut self, node: usize, rng: &mut SimRng) -> Vec<LlmCallSpec> {
        let breakdown = self.nodes[node].ctx.breakdown();
        let prompt = self.nodes[node].ctx.snapshot();
        (0..self.config.lats_children)
            .map(|_| LlmCallSpec {
                prompt: prompt.clone(),
                out_tokens: sample_output_tokens(AgentKind::Lats, OutputKind::Action, rng),
                gen_seed: self.seeds.next(),
                kind: OutputKind::Action,
                breakdown,
            })
            .collect()
    }

    fn best_node(&self) -> usize {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.exhausted)
            .max_by(|(_, a), (_, b)| {
                (a.evidence, a.value.to_bits()).cmp(&(b.evidence, b.value.to_bits()))
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn answer_from(&mut self, node: usize, rng: &mut SimRng) -> AgentOp {
        self.answering_node = node;
        self.phase = Phase::AwaitAnswer;
        let breakdown = self.nodes[node].ctx.breakdown();
        AgentOp::Llm(LlmCallSpec {
            prompt: self.nodes[node].ctx.snapshot(),
            out_tokens: sample_output_tokens(AgentKind::Lats, OutputKind::Answer, rng),
            gen_seed: self.seeds.next(),
            kind: OutputKind::Answer,
            breakdown,
        })
    }

    /// Starts the simulation phase from `node`.
    fn begin_rollout(&mut self, node: usize, rng: &mut SimRng) -> AgentOp {
        self.rollout_node = node;
        self.rollout_steps = 0;
        self.phase = Phase::AwaitRolloutAction;
        let breakdown = self.nodes[node].ctx.breakdown();
        AgentOp::Llm(LlmCallSpec {
            prompt: self.nodes[node].ctx.snapshot(),
            out_tokens: sample_output_tokens(AgentKind::Lats, OutputKind::Action, rng),
            gen_seed: self.seeds.next(),
            kind: OutputKind::Action,
            breakdown,
        })
    }

    fn backpropagate(&mut self, leaf: usize) {
        let value = self.nodes[leaf].value;
        let mut cursor = Some(leaf);
        while let Some(i) = cursor {
            let n = &mut self.nodes[i];
            n.visits += 1;
            // Running average of subtree value.
            n.value += (value - n.value) / n.visits as f64;
            cursor = n.parent;
        }
        self.total_visits += 1;
    }
}

impl AgentPolicy for Lats {
    fn kind(&self) -> AgentKind {
        AgentKind::Lats
    }

    fn next(&mut self, last: &OpResult, rng: &mut SimRng) -> AgentOp {
        match self.phase {
            Phase::Select => {
                self.selected = self.select_node();
                self.phase = Phase::AwaitExpansion;
                AgentOp::LlmBatch(self.expansion_specs(self.selected, rng))
            }
            Phase::AwaitExpansion => {
                // Materialize one child per parallel sample.
                self.pending_children.clear();
                let parent = self.selected;
                for out in &last.llm {
                    let mut ctx = self.nodes[parent].ctx.clone();
                    ctx.append_llm_output(out.gen_seed, out.tokens);
                    let child = Node {
                        parent: Some(parent),
                        depth: self.nodes[parent].depth + 1,
                        evidence: self.nodes[parent].evidence,
                        value: 0.0,
                        visits: 0,
                        exhausted: false,
                        ctx,
                    };
                    self.nodes.push(child);
                    self.pending_children.push(self.nodes.len() - 1);
                }
                self.phase = Phase::AwaitTools;
                // Each child's action invokes a tool; all run in parallel
                // (our optimized LATS implementation, as in the paper).
                let tools = self
                    .pending_children
                    .iter()
                    .map(|_| {
                        let tools = self.task.benchmark.tools();
                        let kind = if tools.len() > 1 && rng.chance(0.35) {
                            tools[1]
                        } else {
                            tools[0]
                        };
                        agentsim_tools::ToolCall::new(kind)
                    })
                    .collect();
                AgentOp::Tools(tools)
            }
            Phase::AwaitTools => {
                let boost = Cognition::reflection_boost(self.failed_answers);
                let p = self
                    .cognition
                    .gather_prob(&self.task, self.config.fewshot, boost);
                for (child, obs) in self.pending_children.clone().iter().zip(&last.tools) {
                    self.nodes[*child].ctx.append_tool(obs);
                    if !obs.failed && self.nodes[*child].evidence < self.task.hops && rng.chance(p)
                    {
                        self.nodes[*child].evidence += 1;
                    }
                }
                self.phase = Phase::AwaitEvals;
                let specs: Vec<LlmCallSpec> = self
                    .pending_children
                    .clone()
                    .into_iter()
                    .map(|child| {
                        let breakdown = self.nodes[child].ctx.breakdown();
                        LlmCallSpec {
                            prompt: self.nodes[child].ctx.snapshot(),
                            out_tokens: sample_output_tokens(
                                AgentKind::Lats,
                                OutputKind::Evaluation,
                                rng,
                            ),
                            gen_seed: self.seeds.next(),
                            kind: OutputKind::Evaluation,
                            breakdown,
                        }
                    })
                    .collect();
                AgentOp::LlmBatch(specs)
            }
            Phase::AwaitEvals => {
                for (&child, out) in self.pending_children.clone().iter().zip(&last.llm) {
                    self.nodes[child]
                        .ctx
                        .append_llm_output(out.gen_seed, out.tokens);
                    let frac = self.nodes[child].evidence as f64 / self.task.hops.max(1) as f64;
                    self.nodes[child].value = self.cognition.node_value(frac, rng);
                    self.backpropagate(child);
                }
                self.iterations += 1;

                // Answer from a terminal node only once backpropagation
                // has confirmed it (visits >= 2): MCTS re-visits a
                // promising leaf before committing, which is where much
                // of LATS's call volume goes (paper Fig. 4: ~71 calls).
                let complete = self
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| !n.exhausted && n.evidence >= self.task.hops && n.visits >= 2)
                    .max_by(|(_, a), (_, b)| {
                        a.value.partial_cmp(&b.value).expect("values are finite")
                    })
                    .map(|(i, _)| i);
                if let Some(node) = complete {
                    return self.answer_from(node, rng);
                }
                if self.iterations >= self.config.lats_iterations {
                    let best = self.best_node();
                    return self.answer_from(best, rng);
                }
                // MCTS simulation phase: roll the most promising child
                // forward a few steps (this is where LATS spends most of
                // its ~71 LLM calls per request — paper Fig. 4).
                let best_child = self
                    .pending_children
                    .iter()
                    .copied()
                    .filter(|&c| !self.nodes[c].exhausted)
                    .max_by(|&a, &b| {
                        self.nodes[a]
                            .value
                            .partial_cmp(&self.nodes[b].value)
                            .expect("values are finite")
                    });
                match best_child {
                    Some(node) => self.begin_rollout(node, rng),
                    None => {
                        self.phase = Phase::Select;
                        self.next(&OpResult::empty(), rng)
                    }
                }
            }
            Phase::AwaitRolloutAction => {
                let out = last.llm.first().expect("rollout action result");
                // Extend the trajectory with a chain node.
                let parent = self.rollout_node;
                let mut ctx = self.nodes[parent].ctx.clone();
                ctx.append_llm_output(out.gen_seed, out.tokens);
                self.nodes.push(Node {
                    parent: Some(parent),
                    depth: self.nodes[parent].depth + 1,
                    evidence: self.nodes[parent].evidence,
                    value: self.nodes[parent].value,
                    visits: 0,
                    exhausted: false,
                    ctx,
                });
                self.rollout_node = self.nodes.len() - 1;
                self.phase = Phase::AwaitRolloutTool;
                let tools = self.task.benchmark.tools();
                let kind = if tools.len() > 1 && rng.chance(0.35) {
                    tools[1]
                } else {
                    tools[0]
                };
                AgentOp::Tools(vec![agentsim_tools::ToolCall::new(kind)])
            }
            Phase::AwaitRolloutTool => {
                let obs = last.tools.first().expect("rollout tool result");
                let node = self.rollout_node;
                self.nodes[node].ctx.append_tool(obs);
                let boost = Cognition::reflection_boost(self.failed_answers);
                let p = self
                    .cognition
                    .gather_prob(&self.task, self.config.fewshot, boost);
                if !obs.failed && self.nodes[node].evidence < self.task.hops && rng.chance(p) {
                    self.nodes[node].evidence += 1;
                }
                self.rollout_steps += 1;
                let frac = self.nodes[node].evidence as f64 / self.task.hops.max(1) as f64;
                self.nodes[node].value = self.cognition.node_value(frac, rng);
                // Simulation results inform the tree (backpropagation);
                // committing to an answer still requires the selection
                // path to confirm the node on a later iteration.
                if self.nodes[node].evidence >= self.task.hops
                    || self.rollout_steps >= ROLLOUT_DEPTH
                {
                    self.backpropagate(node);
                    self.phase = Phase::Select;
                    return self.next(&OpResult::empty(), rng);
                }
                self.phase = Phase::AwaitRolloutAction;
                let breakdown = self.nodes[node].ctx.breakdown();
                AgentOp::Llm(LlmCallSpec {
                    prompt: self.nodes[node].ctx.snapshot(),
                    out_tokens: sample_output_tokens(AgentKind::Lats, OutputKind::Action, rng),
                    gen_seed: self.seeds.next(),
                    kind: OutputKind::Action,
                    breakdown,
                })
            }
            Phase::AwaitAnswer => {
                let out = last.llm.first().expect("answer result");
                let node = self.answering_node;
                self.nodes[node]
                    .ctx
                    .append_llm_output(out.gen_seed, out.tokens);
                let frac = self.nodes[node].evidence as f64 / self.task.hops.max(1) as f64;
                let capability = self.cognition.answer_capability(
                    &self.task,
                    self.config.fewshot,
                    frac,
                    Cognition::reflection_boost(self.failed_answers),
                    self.config.lats_children,
                );
                let solved = Cognition::solves(&self.task, capability);
                // Give up after the search budget or a few failed terminal
                // answers — continuing to re-search an exhausted tree only
                // burns compute (the paper's diminishing-returns regime).
                const MAX_ANSWER_ATTEMPTS: u32 = 3;
                if solved
                    || self.iterations >= self.config.lats_iterations
                    || self.failed_answers + 1 >= MAX_ANSWER_ATTEMPTS
                {
                    self.phase = Phase::Done;
                    return AgentOp::Finish(TaskOutcome {
                        solved,
                        iterations: self.iterations,
                    });
                }
                // Failed: mark the branch exhausted (LATS reflection) and
                // keep searching.
                self.failed_answers += 1;
                self.nodes[node].exhausted = true;
                self.phase = Phase::Select;
                self.next(&OpResult::empty(), rng)
            }
            Phase::Done => panic!("LATS agent resumed after Finish"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_to_completion;
    use agentsim_workloads::{Benchmark, TaskGenerator};

    #[test]
    fn issues_many_parallel_llm_calls() {
        // Fig. 4: LATS performs by far the most LLM calls (~tens).
        let g = TaskGenerator::new(Benchmark::HotpotQa, 1);
        let mut total = 0usize;
        for (i, task) in g.tasks(20).enumerate() {
            let mut agent = Lats::new(&task, AgentConfig::default());
            total += run_to_completion(&mut agent, i as u64).llm_calls;
        }
        let avg = total as f64 / 20.0;
        assert!(avg > 20.0, "LATS averages {avg} LLM calls");
    }

    #[test]
    fn expansion_batches_share_prompt_prefix() {
        let task = TaskGenerator::new(Benchmark::HotpotQa, 2).task(0);
        let mut agent = Lats::new(&task, AgentConfig::default());
        let mut rng = SimRng::seed_from(5);
        match agent.next(&OpResult::empty(), &mut rng) {
            AgentOp::LlmBatch(specs) => {
                assert_eq!(specs.len(), AgentConfig::default().lats_children as usize);
                for s in &specs[1..] {
                    assert_eq!(s.prompt, specs[0].prompt, "siblings share the parent path");
                    assert_ne!(s.gen_seed, specs[0].gen_seed);
                }
            }
            other => panic!("expected expansion batch, got {other:?}"),
        }
    }

    #[test]
    fn beats_reflexion_on_accuracy() {
        // Table III: LATS 80% vs Reflexion 38% (8B, HotpotQA).
        let g = TaskGenerator::new(Benchmark::HotpotQa, 3);
        let (mut lats_ok, mut reflexion_ok) = (0u32, 0u32);
        let n = 150;
        for (i, task) in g.tasks(n).enumerate() {
            let mut l = Lats::new(&task, AgentConfig::default());
            lats_ok += run_to_completion(&mut l, i as u64).outcome.solved as u32;
            let mut r = crate::reflexion::Reflexion::new(&task, AgentConfig::default());
            reflexion_ok += run_to_completion(&mut r, i as u64).outcome.solved as u32;
        }
        let lats = lats_ok as f64 / n as f64;
        let reflexion = reflexion_ok as f64 / n as f64;
        assert!(
            lats > reflexion + 0.15,
            "LATS {lats} vs Reflexion {reflexion}"
        );
    }

    #[test]
    fn wider_expansion_raises_accuracy() {
        // Fig. 21(c): more children per expansion -> higher accuracy.
        let g = TaskGenerator::new(Benchmark::HotpotQa, 4);
        let acc = |children: u32| {
            let n = 150;
            let mut ok = 0u32;
            for (i, task) in g.tasks(n).enumerate() {
                let cfg = AgentConfig::default().with_lats_children(children);
                let mut agent = Lats::new(&task, cfg);
                ok += run_to_completion(&mut agent, i as u64).outcome.solved as u32;
            }
            ok as f64 / n as f64
        };
        let narrow = acc(1);
        let wide = acc(8);
        assert!(
            wide > narrow + 0.08,
            "1 child {narrow} vs 8 children {wide}"
        );
    }

    #[test]
    fn path_contexts_stay_smaller_than_linear_history() {
        // Fig. 8: LATS inputs hold only the root-to-node path.
        let task = TaskGenerator::new(Benchmark::HotpotQa, 5).task(1);
        let mut agent = Lats::new(&task, AgentConfig::default());
        let trace = run_to_completion(&mut agent, 6);
        let max_input = trace
            .llm_breakdowns
            .iter()
            .map(|b| b.input_total())
            .max()
            .unwrap();
        // Path depth is bounded by max_iterations; even with search the
        // context stays within a few steps of history.
        let per_step = 55 + 300 + 25; // action + tool obs + evaluation
        let bound = trace.llm_breakdowns[0].input_total()
            + AgentConfig::default().max_iterations * per_step * 3;
        assert!(max_input < bound, "max input {max_input} vs bound {bound}");
    }

    #[test]
    fn deterministic_given_seed() {
        let task = TaskGenerator::new(Benchmark::HotpotQa, 6).task(0);
        let a = run_to_completion(&mut Lats::new(&task, AgentConfig::default()), 9);
        let b = run_to_completion(&mut Lats::new(&task, AgentConfig::default()), 9);
        assert_eq!(a.llm_calls, b.llm_calls);
        assert_eq!(a.outcome, b.outcome);
    }
}
