//! Chain-of-Thought: one LLM call, no tools (the paper's static-reasoning
//! baseline within the agent comparison).

use agentsim_simkit::SimRng;
use agentsim_workloads::Task;

use crate::action::{AgentOp, LlmCallSpec, OpResult, OutputKind, TaskOutcome};
use crate::catalog::AgentKind;
use crate::cognition::{sample_output_tokens, Cognition};
use crate::config::AgentConfig;
use crate::context::ContextTracker;
use crate::policy::{AgentPolicy, SeedSeq};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    AwaitAnswer,
    Done,
}

/// The CoT agent: emits a single long reasoning-and-answer call.
#[derive(Debug)]
pub struct Cot {
    task: Task,
    config: AgentConfig,
    cognition: Cognition,
    ctx: ContextTracker,
    seeds: SeedSeq,
    state: State,
}

impl Cot {
    /// Creates a CoT agent for `task`.
    pub fn new(task: &Task, config: AgentConfig) -> Self {
        Cot {
            cognition: Cognition::new(config.model_quality),
            ctx: ContextTracker::new(AgentKind::Cot.tag(), task, config.fewshot),
            seeds: SeedSeq::new(task, AgentKind::Cot.tag()),
            task: task.clone(),
            config,
            state: State::Start,
        }
    }
}

impl AgentPolicy for Cot {
    fn kind(&self) -> AgentKind {
        AgentKind::Cot
    }

    fn next(&mut self, _last: &OpResult, rng: &mut SimRng) -> AgentOp {
        match self.state {
            State::Start => {
                self.state = State::AwaitAnswer;
                let out = sample_output_tokens(AgentKind::Cot, OutputKind::Answer, rng);
                AgentOp::Llm(LlmCallSpec {
                    prompt: self.ctx.snapshot(),
                    out_tokens: out,
                    gen_seed: self.seeds.next(),
                    kind: OutputKind::Answer,
                    breakdown: self.ctx.breakdown(),
                })
            }
            State::AwaitAnswer => {
                self.state = State::Done;
                let capability = self
                    .cognition
                    .cot_capability(&self.task, self.config.fewshot);
                AgentOp::Finish(TaskOutcome {
                    solved: Cognition::solves(&self.task, capability),
                    iterations: 1,
                })
            }
            State::Done => panic!("CoT agent resumed after Finish"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_workloads::{Benchmark, TaskGenerator};

    fn run(task: &Task, seed: u64) -> (usize, bool) {
        let mut agent = Cot::new(task, AgentConfig::default());
        let mut rng = SimRng::seed_from(seed);
        let mut llm_calls = 0;
        let mut last = OpResult::empty();
        loop {
            match agent.next(&last, &mut rng) {
                AgentOp::Llm(spec) => {
                    llm_calls += 1;
                    last = OpResult::of_llm(spec.out_tokens, spec.gen_seed);
                }
                AgentOp::Finish(outcome) => return (llm_calls, outcome.solved),
                other => panic!("CoT must not emit {other:?}"),
            }
        }
    }

    #[test]
    fn exactly_one_llm_call_no_tools() {
        let task = TaskGenerator::new(Benchmark::HotpotQa, 1).task(0);
        let (calls, _) = run(&task, 5);
        assert_eq!(calls, 1, "paper Fig. 4: CoT performs a single inference");
    }

    #[test]
    fn output_is_long_single_generation() {
        let task = TaskGenerator::new(Benchmark::Math, 1).task(0);
        let mut agent = Cot::new(&task, AgentConfig::default());
        let mut rng = SimRng::seed_from(3);
        match agent.next(&OpResult::empty(), &mut rng) {
            AgentOp::Llm(spec) => {
                assert!(spec.out_tokens > 100, "CoT output {}", spec.out_tokens);
                assert_eq!(spec.kind, OutputKind::Answer);
                assert!(spec.breakdown.input_total() > 500);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn accuracy_declines_with_difficulty() {
        let g = TaskGenerator::new(Benchmark::Math, 2);
        let (mut easy_ok, mut easy_n, mut hard_ok, mut hard_n) = (0, 0, 0, 0);
        for (i, task) in g.tasks(400).enumerate() {
            let (_, solved) = run(&task, i as u64);
            if task.difficulty < 0.5 {
                easy_n += 1;
                easy_ok += solved as u32;
            } else {
                hard_n += 1;
                hard_ok += solved as u32;
            }
        }
        let easy_rate = easy_ok as f64 / easy_n as f64;
        let hard_rate = hard_ok as f64 / hard_n as f64;
        assert!(
            easy_rate > hard_rate,
            "easy {easy_rate} vs hard {hard_rate}"
        );
    }

    #[test]
    #[should_panic(expected = "resumed after Finish")]
    fn resume_after_finish_panics() {
        let task = TaskGenerator::new(Benchmark::Math, 1).task(0);
        let mut agent = Cot::new(&task, AgentConfig::default());
        let mut rng = SimRng::seed_from(1);
        let _ = agent.next(&OpResult::empty(), &mut rng);
        let _ = agent.next(&OpResult::empty(), &mut rng);
        let _ = agent.next(&OpResult::empty(), &mut rng);
    }
}
