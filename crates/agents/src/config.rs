//! Agent design-space configuration (the paper's §V knobs).

/// Tunable design parameters of an agent deployment.
///
/// These are the knobs the paper sweeps in its Section V cost-efficiency
/// study: few-shot prompting depth (Fig. 20), iteration budget (Fig. 19),
/// reflection depth and tree width (Fig. 21), and backend model quality
/// (Fig. 22).
///
/// # Example
///
/// ```
/// use agentsim_agents::AgentConfig;
///
/// let cfg = AgentConfig::default().with_max_iterations(10).with_fewshot(6);
/// assert_eq!(cfg.max_iterations, 10);
/// assert_eq!(cfg.fewshot, 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentConfig {
    /// Few-shot examples in the prompt.
    pub fewshot: u32,
    /// Maximum reasoning+tool iterations per trial.
    pub max_iterations: u32,
    /// Trials for reflective agents (1 trial = no reflection; each extra
    /// trial is preceded by a reflection step).
    pub max_trials: u32,
    /// Children sampled per LATS tree expansion (parallel scaling width).
    pub lats_children: u32,
    /// MCTS iterations budget for LATS.
    pub lats_iterations: u32,
    /// Replans allowed for LLMCompiler.
    pub max_replans: u32,
    /// Backend model quality in `(0, 1)` — see
    /// [`Cognition`](crate::cognition::Cognition) for presets.
    pub model_quality: f64,
}

impl AgentConfig {
    /// The paper's default configuration: 4-shot prompts, 7-step trials,
    /// 3 trials, 5-child LATS expansions, 8B-grade model quality.
    pub fn default_8b() -> Self {
        AgentConfig {
            fewshot: 4,
            max_iterations: 7,
            max_trials: 3,
            lats_children: 5,
            lats_iterations: 8,
            max_replans: 2,
            model_quality: crate::cognition::Cognition::QUALITY_8B,
        }
    }

    /// The 70B-backend configuration.
    pub fn default_70b() -> Self {
        AgentConfig {
            model_quality: crate::cognition::Cognition::QUALITY_70B,
            ..AgentConfig::default_8b()
        }
    }

    /// Sets the few-shot example count.
    pub fn with_fewshot(mut self, n: u32) -> Self {
        self.fewshot = n;
        self
    }

    /// Sets the per-trial iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_max_iterations(mut self, n: u32) -> Self {
        assert!(n > 0, "iteration budget must be at least 1");
        self.max_iterations = n;
        self
    }

    /// Sets the trial budget (1 = no reflection).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_max_trials(mut self, n: u32) -> Self {
        assert!(n > 0, "trial budget must be at least 1");
        self.max_trials = n;
        self
    }

    /// Sets the LATS expansion width.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_lats_children(mut self, n: u32) -> Self {
        assert!(n > 0, "LATS needs at least one child per expansion");
        self.lats_children = n;
        self
    }

    /// Sets the LATS MCTS iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_lats_iterations(mut self, n: u32) -> Self {
        assert!(n > 0, "LATS needs at least one iteration");
        self.lats_iterations = n;
        self
    }

    /// Sets the model quality directly (e.g. for hypothetical models).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)`.
    pub fn with_model_quality(mut self, q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "model quality must be in (0, 1)");
        self.model_quality = q;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if any budget is zero or quality out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_iterations == 0 || self.max_trials == 0 {
            return Err("budgets must be at least 1".into());
        }
        if self.lats_children == 0 || self.lats_iterations == 0 {
            return Err("LATS parameters must be at least 1".into());
        }
        if !(self.model_quality > 0.0 && self.model_quality < 1.0) {
            return Err(format!(
                "model quality {} out of (0, 1)",
                self.model_quality
            ));
        }
        Ok(())
    }
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig::default_8b()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        AgentConfig::default_8b().validate().unwrap();
        AgentConfig::default_70b().validate().unwrap();
    }

    #[test]
    fn seventy_b_is_higher_quality() {
        assert!(AgentConfig::default_70b().model_quality > AgentConfig::default_8b().model_quality);
    }

    #[test]
    fn builders_set_fields() {
        let c = AgentConfig::default()
            .with_fewshot(2)
            .with_max_trials(5)
            .with_lats_children(16)
            .with_lats_iterations(12);
        assert_eq!(c.fewshot, 2);
        assert_eq!(c.max_trials, 5);
        assert_eq!(c.lats_children, 16);
        assert_eq!(c.lats_iterations, 12);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_iterations_rejected() {
        let _ = AgentConfig::default().with_max_iterations(0);
    }
}
