//! The operation protocol between agents and drivers.

use std::fmt;

use agentsim_kvcache::TokenBuf;
use agentsim_tools::{ToolCall, ToolResult};

use crate::context::ContextBreakdown;

/// Role of an LLM call within the agent workflow (drives output-length
/// statistics and reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputKind {
    /// A thought + action step (ReAct-style).
    Action,
    /// A structured plan (LLMCompiler's planner).
    Plan,
    /// A self-reflection over a failed trajectory (Reflexion).
    Reflection,
    /// A value estimate for a search node (LATS).
    Evaluation,
    /// A final answer attempt.
    Answer,
}

impl fmt::Display for OutputKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OutputKind::Action => "action",
            OutputKind::Plan => "plan",
            OutputKind::Reflection => "reflection",
            OutputKind::Evaluation => "evaluation",
            OutputKind::Answer => "answer",
        })
    }
}

/// One LLM inference the agent wants executed.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmCallSpec {
    /// The full input prompt.
    pub prompt: TokenBuf,
    /// Number of tokens to generate.
    pub out_tokens: u32,
    /// Seed identifying the output token stream (for history reuse).
    pub gen_seed: u64,
    /// What this call is for.
    pub kind: OutputKind,
    /// Input-token composition at call time (for the paper's Fig. 8/9).
    pub breakdown: ContextBreakdown,
}

/// Final task outcome reported by the agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskOutcome {
    /// Whether the final answer was correct.
    pub solved: bool,
    /// Reasoning iterations consumed.
    pub iterations: u32,
}

/// What the agent wants to do next.
///
/// Batched variants execute their elements concurrently; the driver
/// resumes the agent when *all* elements have completed.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentOp {
    /// One LLM call.
    Llm(LlmCallSpec),
    /// Parallel LLM calls (LATS tree expansion / node evaluation).
    LlmBatch(Vec<LlmCallSpec>),
    /// Parallel tool invocations (one or more).
    Tools(Vec<ToolCall>),
    /// LLMCompiler: a planner call whose streamed output launches tool
    /// calls before the plan finishes. `overlap` is the fraction of the
    /// planner's latency by which tool execution is pulled forward.
    OverlappedPlan {
        /// The planner LLM call.
        llm: LlmCallSpec,
        /// Tool calls launched from the streaming plan.
        tools: Vec<ToolCall>,
        /// Fraction of planner latency overlapped with tool execution,
        /// in `[0, 1]`.
        overlap: f64,
    },
    /// The task is finished.
    Finish(TaskOutcome),
}

impl AgentOp {
    /// Number of LLM calls in this op.
    pub fn llm_calls(&self) -> usize {
        match self {
            AgentOp::Llm(_) => 1,
            AgentOp::LlmBatch(v) => v.len(),
            AgentOp::OverlappedPlan { .. } => 1,
            AgentOp::Tools(_) | AgentOp::Finish(_) => 0,
        }
    }

    /// Number of tool calls in this op.
    pub fn tool_calls(&self) -> usize {
        match self {
            AgentOp::Tools(v) => v.len(),
            AgentOp::OverlappedPlan { tools, .. } => tools.len(),
            _ => 0,
        }
    }
}

/// Result of one LLM call, as seen by the agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlmOutput {
    /// Tokens generated.
    pub tokens: u32,
    /// The output stream seed (echoed from the spec).
    pub gen_seed: u64,
}

/// Results of the previous [`AgentOp`], fed back into the policy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpResult {
    /// LLM outputs, in spec order.
    pub llm: Vec<LlmOutput>,
    /// Tool results, in call order.
    pub tools: Vec<ToolResult>,
}

impl OpResult {
    /// The empty result used to start a session.
    pub fn empty() -> Self {
        OpResult::default()
    }

    /// Builds a result holding a single LLM output.
    pub fn of_llm(tokens: u32, gen_seed: u64) -> Self {
        OpResult {
            llm: vec![LlmOutput { tokens, gen_seed }],
            tools: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_tools::ToolKind;

    fn spec() -> LlmCallSpec {
        LlmCallSpec {
            prompt: TokenBuf::from_segment(1, 8),
            out_tokens: 5,
            gen_seed: 9,
            kind: OutputKind::Action,
            breakdown: ContextBreakdown::default(),
        }
    }

    #[test]
    fn op_counts() {
        assert_eq!(AgentOp::Llm(spec()).llm_calls(), 1);
        assert_eq!(AgentOp::LlmBatch(vec![spec(), spec()]).llm_calls(), 2);
        let tools = vec![ToolCall::new(ToolKind::PythonCalc); 3];
        assert_eq!(AgentOp::Tools(tools.clone()).tool_calls(), 3);
        let overlapped = AgentOp::OverlappedPlan {
            llm: spec(),
            tools,
            overlap: 0.5,
        };
        assert_eq!(overlapped.llm_calls(), 1);
        assert_eq!(overlapped.tool_calls(), 3);
        assert_eq!(
            AgentOp::Finish(TaskOutcome {
                solved: true,
                iterations: 2
            })
            .llm_calls(),
            0
        );
    }

    #[test]
    fn empty_result_has_no_payload() {
        let r = OpResult::empty();
        assert!(r.llm.is_empty());
        assert!(r.tools.is_empty());
    }

    #[test]
    fn output_kind_display() {
        assert_eq!(OutputKind::Plan.to_string(), "plan");
    }
}
