//! ReAct: interleaved reasoning and tool use.
//!
//! Each iteration is a thought+action LLM call followed by a tool call
//! whose observation feeds the next thought (the paper's Fig. 3b). The
//! trial logic is factored into a crate-private `ReactCore` so Reflexion
//! can reuse it across reflective trials.

use agentsim_simkit::SimRng;
use agentsim_tools::ToolCall;
use agentsim_workloads::Task;

use crate::action::{AgentOp, LlmCallSpec, OpResult, OutputKind, TaskOutcome};
use crate::catalog::AgentKind;
use crate::cognition::{sample_output_tokens, Cognition};
use crate::config::AgentConfig;
use crate::context::ContextTracker;
use crate::policy::{AgentPolicy, SeedSeq};

/// Shared per-session state every linear agent needs.
#[derive(Debug)]
pub(crate) struct AgentInner {
    pub task: Task,
    pub config: AgentConfig,
    pub cognition: Cognition,
    pub ctx: ContextTracker,
    pub seeds: SeedSeq,
}

impl AgentInner {
    pub(crate) fn new(kind: AgentKind, task: &Task, config: AgentConfig) -> Self {
        AgentInner {
            cognition: Cognition::new(config.model_quality),
            ctx: ContextTracker::new(kind.tag(), task, config.fewshot),
            seeds: SeedSeq::new(task, kind.tag()),
            task: task.clone(),
            config,
        }
    }

    /// Builds an LLM call over the current context.
    pub(crate) fn llm_call(
        &mut self,
        kind: OutputKind,
        agent: AgentKind,
        rng: &mut SimRng,
    ) -> LlmCallSpec {
        LlmCallSpec {
            prompt: self.ctx.snapshot(),
            out_tokens: sample_output_tokens(agent, kind, rng),
            gen_seed: self.seeds.next(),
            kind,
            breakdown: self.ctx.breakdown(),
        }
    }

    /// Picks the tool for the next action: mostly the benchmark's primary
    /// tool, sometimes the secondary (lookup/click/calculator).
    pub(crate) fn pick_tool(&self, rng: &mut SimRng) -> ToolCall {
        let tools = self.task.benchmark.tools();
        debug_assert!(!tools.is_empty(), "agentic benchmarks expose tools");
        let kind = if tools.len() > 1 && rng.chance(0.35) {
            tools[1]
        } else {
            tools[0]
        };
        ToolCall::new(kind)
    }
}

/// What one step of a trial produced.
#[derive(Debug)]
pub(crate) enum TrialStep {
    /// Execute this op and come back.
    Op(AgentOp),
    /// The trial ended with this outcome.
    Done { solved: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    NeedThought,
    AwaitThought,
    AwaitTool,
    AwaitAnswer,
}

/// One ReAct trial: think → act → observe, until the evidence is complete
/// or the iteration budget runs out, then answer.
#[derive(Debug)]
pub(crate) struct ReactCore {
    evidence: u32,
    iter: u32,
    phase: Phase,
    boost: f64,
    agent: AgentKind,
}

impl ReactCore {
    /// Starts a trial. `boost` is the reflection multiplier (1.0 for the
    /// first trial) and `agent` labels the calls for output statistics.
    pub(crate) fn new(agent: AgentKind, boost: f64) -> Self {
        ReactCore {
            evidence: 0,
            iter: 0,
            phase: Phase::NeedThought,
            boost,
            agent,
        }
    }

    /// Iterations consumed so far.
    pub(crate) fn iterations(&self) -> u32 {
        self.iter
    }

    /// Fraction of the required evidence gathered.
    pub(crate) fn evidence_frac(&self, task: &Task) -> f64 {
        self.evidence as f64 / task.hops.max(1) as f64
    }

    /// Advances the trial by one step.
    pub(crate) fn advance(
        &mut self,
        inner: &mut AgentInner,
        last: &OpResult,
        rng: &mut SimRng,
    ) -> TrialStep {
        match self.phase {
            Phase::NeedThought => {
                if self.evidence >= inner.task.hops || self.iter >= inner.config.max_iterations {
                    self.phase = Phase::AwaitAnswer;
                    return TrialStep::Op(AgentOp::Llm(inner.llm_call(
                        OutputKind::Answer,
                        self.agent,
                        rng,
                    )));
                }
                self.phase = Phase::AwaitThought;
                TrialStep::Op(AgentOp::Llm(inner.llm_call(
                    OutputKind::Action,
                    self.agent,
                    rng,
                )))
            }
            Phase::AwaitThought => {
                let out = last.llm.first().expect("thought result");
                inner.ctx.append_llm_output(out.gen_seed, out.tokens);
                self.phase = Phase::AwaitTool;
                TrialStep::Op(AgentOp::Tools(vec![inner.pick_tool(rng)]))
            }
            Phase::AwaitTool => {
                let obs = last.tools.first().expect("tool result");
                inner.ctx.append_tool(obs);
                self.iter += 1;
                let p = inner
                    .cognition
                    .gather_prob(&inner.task, inner.config.fewshot, self.boost);
                if !obs.failed && self.evidence < inner.task.hops && rng.chance(p) {
                    self.evidence += 1;
                }
                self.phase = Phase::NeedThought;
                // Fall through to emit the next thought (or the answer).
                self.advance(inner, &OpResult::empty(), rng)
            }
            Phase::AwaitAnswer => {
                let out = last.llm.first().expect("answer result");
                inner.ctx.append_llm_output(out.gen_seed, out.tokens);
                let capability = inner.cognition.answer_capability(
                    &inner.task,
                    inner.config.fewshot,
                    self.evidence_frac(&inner.task),
                    self.boost,
                    1,
                );
                TrialStep::Done {
                    solved: Cognition::solves(&inner.task, capability),
                }
            }
        }
    }
}

/// The ReAct agent: a single trial.
#[derive(Debug)]
pub struct React {
    inner: AgentInner,
    core: ReactCore,
    finished: bool,
}

impl React {
    /// Creates a ReAct agent for `task`.
    pub fn new(task: &Task, config: AgentConfig) -> Self {
        React {
            inner: AgentInner::new(AgentKind::React, task, config),
            core: ReactCore::new(AgentKind::React, 1.0),
            finished: false,
        }
    }
}

impl AgentPolicy for React {
    fn kind(&self) -> AgentKind {
        AgentKind::React
    }

    fn next(&mut self, last: &OpResult, rng: &mut SimRng) -> AgentOp {
        assert!(!self.finished, "ReAct agent resumed after Finish");
        match self.core.advance(&mut self.inner, last, rng) {
            TrialStep::Op(op) => op,
            TrialStep::Done { solved } => {
                self.finished = true;
                AgentOp::Finish(TaskOutcome {
                    solved,
                    iterations: self.core.iterations(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_to_completion;
    use agentsim_workloads::{Benchmark, TaskGenerator};

    #[test]
    fn alternates_llm_and_tool_calls() {
        let task = TaskGenerator::new(Benchmark::HotpotQa, 1).task(0);
        let mut agent = React::new(&task, AgentConfig::default());
        let trace = run_to_completion(&mut agent, 3);
        // LLM calls = iterations (thoughts) + 1 answer; tools = iterations.
        assert_eq!(trace.llm_calls, trace.tool_calls + 1);
        assert!(trace.tool_calls >= 1);
        assert!(trace.outcome.iterations <= AgentConfig::default().max_iterations);
    }

    #[test]
    fn iteration_budget_caps_work() {
        let task = TaskGenerator::new(Benchmark::HotpotQa, 2).task(1);
        let cfg = AgentConfig::default().with_max_iterations(2);
        let mut agent = React::new(&task, cfg);
        let trace = run_to_completion(&mut agent, 4);
        assert!(trace.tool_calls <= 2);
        assert!(trace.llm_calls <= 3);
    }

    #[test]
    fn more_llm_calls_than_cot() {
        // Fig. 4: tool-augmented agents average far more LLM calls.
        let g = TaskGenerator::new(Benchmark::HotpotQa, 3);
        let mut total = 0usize;
        for (i, task) in g.tasks(50).enumerate() {
            let mut agent = React::new(&task, AgentConfig::default());
            total += run_to_completion(&mut agent, i as u64).llm_calls;
        }
        let avg = total as f64 / 50.0;
        assert!(avg > 3.0, "ReAct averages {avg} LLM calls");
    }

    #[test]
    fn context_grows_across_iterations() {
        let task = TaskGenerator::new(Benchmark::HotpotQa, 4).task(0);
        let mut agent = React::new(&task, AgentConfig::default());
        let trace = run_to_completion(&mut agent, 7);
        // Fig. 9: later calls see strictly larger inputs.
        let inputs: Vec<u32> = trace
            .llm_breakdowns
            .iter()
            .map(|b| b.input_total())
            .collect();
        assert!(inputs.len() >= 2);
        for w in inputs.windows(2) {
            assert!(w[1] > w[0], "context must grow: {inputs:?}");
        }
        let last = trace.llm_breakdowns.last().unwrap();
        assert!(last.llm_history > 0);
        assert!(last.tool_history > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let task = TaskGenerator::new(Benchmark::WebShop, 5).task(0);
        let a = run_to_completion(&mut React::new(&task, AgentConfig::default()), 9);
        let b = run_to_completion(&mut React::new(&task, AgentConfig::default()), 9);
        assert_eq!(a.llm_calls, b.llm_calls);
        assert_eq!(a.outcome.solved, b.outcome.solved);
    }

    #[test]
    fn accuracy_improves_with_iteration_budget_then_saturates() {
        // Fig. 19 shape: more iterations help up to a point.
        let g = TaskGenerator::new(Benchmark::HotpotQa, 6);
        let acc = |budget: u32| {
            let mut solved = 0;
            for (i, task) in g.tasks(200).enumerate() {
                let cfg = AgentConfig::default().with_max_iterations(budget);
                let mut agent = React::new(&task, cfg);
                solved += run_to_completion(&mut agent, i as u64).outcome.solved as u32;
            }
            solved as f64 / 200.0
        };
        let a1 = acc(1);
        let a7 = acc(7);
        let a15 = acc(15);
        assert!(a7 > a1 + 0.05, "budget 1: {a1}, budget 7: {a7}");
        assert!((a15 - a7).abs() < 0.08, "saturation: {a7} -> {a15}");
    }
}
