//! Agent identities and the Table I capability matrix.

use std::fmt;

use agentsim_workloads::Benchmark;

/// The five agent frameworks the paper characterizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AgentKind {
    /// Chain-of-Thought: single-call internal reasoning, no tools.
    Cot,
    /// ReAct: interleaved reasoning and tool use.
    React,
    /// Reflexion: ReAct trials with verbal self-reflection between them.
    Reflexion,
    /// Language Agent Tree Search: MCTS over reasoning/action branches.
    Lats,
    /// LLMCompiler: DAG planning with streamed, parallel tool execution.
    LlmCompiler,
    /// Best-of-N: static parallel sampling (not in the paper's Table I;
    /// the static test-time-scaling baseline its introduction contrasts
    /// agents against).
    BestOfN,
}

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Internal reasoning.
    pub reasoning: bool,
    /// External tool use.
    pub tool_use: bool,
    /// Self-reflection over failed trajectories.
    pub reflection: bool,
    /// Tree search over branches.
    pub tree_search: bool,
    /// Structured multi-step planning.
    pub structured_planning: bool,
}

impl AgentKind {
    /// The paper's five agents (Table I), in its order. `BestOfN` is a
    /// deliberate omission: it is the static baseline, not an agent.
    pub const ALL: [AgentKind; 5] = [
        AgentKind::Cot,
        AgentKind::React,
        AgentKind::Reflexion,
        AgentKind::Lats,
        AgentKind::LlmCompiler,
    ];

    /// The Table I capability row for this agent.
    pub fn capabilities(self) -> Capabilities {
        match self {
            AgentKind::Cot => Capabilities {
                reasoning: true,
                tool_use: false,
                reflection: false,
                tree_search: false,
                structured_planning: false,
            },
            AgentKind::React => Capabilities {
                reasoning: true,
                tool_use: true,
                reflection: false,
                tree_search: false,
                structured_planning: false,
            },
            AgentKind::Reflexion => Capabilities {
                reasoning: true,
                tool_use: true,
                reflection: true,
                tree_search: false,
                structured_planning: false,
            },
            AgentKind::Lats => Capabilities {
                reasoning: true,
                tool_use: true,
                reflection: true,
                tree_search: true,
                structured_planning: false,
            },
            AgentKind::LlmCompiler => Capabilities {
                reasoning: true,
                tool_use: true,
                reflection: true,
                tree_search: false,
                structured_planning: true,
            },
            AgentKind::BestOfN => Capabilities {
                reasoning: true,
                tool_use: false,
                reflection: false,
                tree_search: false,
                structured_planning: false,
            },
        }
    }

    /// Whether the paper evaluates this agent on `benchmark` (Table II's
    /// omissions: CoT cannot browse WebShop; LLMCompiler's DAG planning is
    /// unsuited to MATH and HumanEval).
    pub fn supports(self, benchmark: Benchmark) -> bool {
        !matches!(
            (self, benchmark),
            (_, Benchmark::ShareGpt)
                | (AgentKind::Cot | AgentKind::BestOfN, Benchmark::WebShop)
                | (
                    AgentKind::LlmCompiler,
                    Benchmark::Math | Benchmark::HumanEval
                )
        )
    }

    /// A small integer tag used to derive prompt-segment seeds, so each
    /// framework's instructions/few-shots are distinct token streams.
    pub fn tag(self) -> u64 {
        match self {
            AgentKind::Cot => 1,
            AgentKind::React => 2,
            AgentKind::Reflexion => 3,
            AgentKind::Lats => 4,
            AgentKind::LlmCompiler => 5,
            AgentKind::BestOfN => 6,
        }
    }
}

impl fmt::Display for AgentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AgentKind::Cot => "CoT",
            AgentKind::React => "ReAct",
            AgentKind::Reflexion => "Reflexion",
            AgentKind::Lats => "LATS",
            AgentKind::LlmCompiler => "LLMCompiler",
            AgentKind::BestOfN => "Best-of-N",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_table1() {
        // Strictly increasing capability count CoT -> ReAct -> Reflexion -> LATS.
        let count = |k: AgentKind| {
            let c = k.capabilities();
            [
                c.reasoning,
                c.tool_use,
                c.reflection,
                c.tree_search,
                c.structured_planning,
            ]
            .iter()
            .filter(|&&b| b)
            .count()
        };
        assert_eq!(count(AgentKind::Cot), 1);
        assert_eq!(count(AgentKind::React), 2);
        assert_eq!(count(AgentKind::Reflexion), 3);
        assert_eq!(count(AgentKind::Lats), 4);
        assert!(AgentKind::LlmCompiler.capabilities().structured_planning);
        assert!(!AgentKind::LlmCompiler.capabilities().tree_search);
    }

    #[test]
    fn benchmark_support_matches_table2() {
        assert!(!AgentKind::Cot.supports(Benchmark::WebShop));
        assert!(!AgentKind::LlmCompiler.supports(Benchmark::Math));
        assert!(!AgentKind::LlmCompiler.supports(Benchmark::HumanEval));
        assert!(AgentKind::LlmCompiler.supports(Benchmark::HotpotQa));
        for k in AgentKind::ALL {
            assert!(k.supports(Benchmark::HotpotQa));
            assert!(!k.supports(Benchmark::ShareGpt));
        }
    }

    #[test]
    fn tags_are_distinct() {
        let mut tags: Vec<u64> = AgentKind::ALL.iter().map(|k| k.tag()).collect();
        tags.push(AgentKind::BestOfN.tag());
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), 6);
    }

    #[test]
    fn best_of_n_is_a_static_baseline() {
        assert!(
            !AgentKind::ALL.contains(&AgentKind::BestOfN),
            "not in Table I"
        );
        let c = AgentKind::BestOfN.capabilities();
        assert!(c.reasoning && !c.tool_use && !c.reflection);
        assert!(!AgentKind::BestOfN.supports(Benchmark::WebShop));
        assert!(AgentKind::BestOfN.supports(Benchmark::HotpotQa));
    }
}
