//! Best-of-N: *static* parallel test-time scaling (the paper's Fig. 1b
//! regime). N independent CoT-style samples are generated concurrently
//! and the best is selected — more compute, no tools, no adaptivity.
//!
//! This is not one of the paper's five agents (its Table I); it is the
//! static baseline its introduction contrasts agents against, included
//! here so the static-vs-dynamic scaling comparison can be run on the
//! same substrate (`ext_static` experiment).

use agentsim_simkit::SimRng;
use agentsim_workloads::Task;

use crate::action::{AgentOp, LlmCallSpec, OpResult, OutputKind, TaskOutcome};
use crate::catalog::AgentKind;
use crate::cognition::{sample_output_tokens, Cognition};
use crate::config::AgentConfig;
use crate::context::ContextTracker;
use crate::policy::{AgentPolicy, SeedSeq};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    AwaitSamples,
    Done,
}

/// The Best-of-N static scaler.
#[derive(Debug)]
pub struct BestOfN {
    task: Task,
    config: AgentConfig,
    samples: u32,
    cognition: Cognition,
    ctx: ContextTracker,
    seeds: SeedSeq,
    state: State,
}

impl BestOfN {
    /// Creates a Best-of-N scaler drawing `samples` parallel completions.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn new(task: &Task, config: AgentConfig, samples: u32) -> Self {
        assert!(samples > 0, "need at least one sample");
        BestOfN {
            cognition: Cognition::new(config.model_quality),
            ctx: ContextTracker::new(AgentKind::BestOfN.tag(), task, config.fewshot),
            seeds: SeedSeq::new(task, AgentKind::BestOfN.tag()),
            task: task.clone(),
            config,
            samples,
            state: State::Start,
        }
    }

    /// Number of parallel samples drawn.
    pub fn samples(&self) -> u32 {
        self.samples
    }
}

impl AgentPolicy for BestOfN {
    fn kind(&self) -> AgentKind {
        AgentKind::BestOfN
    }

    fn next(&mut self, _last: &OpResult, rng: &mut SimRng) -> AgentOp {
        match self.state {
            State::Start => {
                self.state = State::AwaitSamples;
                let prompt = self.ctx.snapshot();
                let breakdown = self.ctx.breakdown();
                let specs: Vec<LlmCallSpec> = (0..self.samples)
                    .map(|_| LlmCallSpec {
                        prompt: prompt.clone(),
                        out_tokens: sample_output_tokens(AgentKind::Cot, OutputKind::Answer, rng),
                        gen_seed: self.seeds.next(),
                        kind: OutputKind::Answer,
                        breakdown,
                    })
                    .collect();
                AgentOp::LlmBatch(specs)
            }
            State::AwaitSamples => {
                self.state = State::Done;
                let capability =
                    self.cognition
                        .static_capability(&self.task, self.config.fewshot, self.samples);
                AgentOp::Finish(TaskOutcome {
                    solved: Cognition::solves(&self.task, capability),
                    iterations: 1,
                })
            }
            State::Done => panic!("Best-of-N resumed after Finish"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_to_completion;
    use agentsim_workloads::{Benchmark, TaskGenerator};

    #[test]
    fn issues_exactly_n_parallel_calls_no_tools() {
        let task = TaskGenerator::new(Benchmark::HotpotQa, 1).task(0);
        for n in [1u32, 4, 16] {
            let mut agent = BestOfN::new(&task, AgentConfig::default(), n);
            let trace = run_to_completion(&mut agent, 3);
            assert_eq!(trace.llm_calls, n as usize);
            assert_eq!(trace.tool_calls, 0);
        }
    }

    #[test]
    fn samples_share_the_prompt_with_distinct_streams() {
        let task = TaskGenerator::new(Benchmark::Math, 2).task(0);
        let mut agent = BestOfN::new(&task, AgentConfig::default(), 4);
        let mut rng = SimRng::seed_from(5);
        match agent.next(&OpResult::empty(), &mut rng) {
            AgentOp::LlmBatch(specs) => {
                assert_eq!(specs.len(), 4);
                for s in &specs[1..] {
                    assert_eq!(s.prompt, specs[0].prompt);
                    assert_ne!(s.gen_seed, specs[0].gen_seed);
                }
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn more_samples_raise_accuracy_with_diminishing_returns() {
        let g = TaskGenerator::new(Benchmark::HotpotQa, 3);
        let acc = |n: u32| {
            let tasks = 300;
            let mut ok = 0u32;
            for (i, task) in g.tasks(tasks).enumerate() {
                let mut agent = BestOfN::new(&task, AgentConfig::default(), n);
                ok += run_to_completion(&mut agent, i as u64).outcome.solved as u32;
            }
            ok as f64 / tasks as f64
        };
        let a1 = acc(1);
        let a8 = acc(8);
        let a32 = acc(32);
        assert!(a8 > a1, "sampling helps: {a1} -> {a8}");
        assert!(a32 - a8 < a8 - a1 + 0.02, "diminishing: {a8} -> {a32}");
    }

    #[test]
    fn static_scaling_stays_below_tool_agents_on_knowledge_tasks() {
        // The paper's core contrast: no amount of static sampling fetches
        // the missing evidence that tools retrieve.
        let g = TaskGenerator::new(Benchmark::HotpotQa, 4);
        let tasks = 200;
        let (mut static_ok, mut lats_ok) = (0u32, 0u32);
        for (i, task) in g.tasks(tasks).enumerate() {
            let mut b = BestOfN::new(&task, AgentConfig::default(), 32);
            static_ok += run_to_completion(&mut b, i as u64).outcome.solved as u32;
            let mut l = crate::lats::Lats::new(&task, AgentConfig::default());
            lats_ok += run_to_completion(&mut l, i as u64).outcome.solved as u32;
        }
        let s = static_ok as f64 / tasks as f64;
        let d = lats_ok as f64 / tasks as f64;
        assert!(d > s + 0.1, "dynamic {d} must beat static {s}");
    }
}
