//! The agent policy trait and factory.

use std::fmt;

use agentsim_simkit::rng::hash_key;
use agentsim_simkit::SimRng;
use agentsim_workloads::Task;

use crate::action::{AgentOp, OpResult};
use crate::bestofn::BestOfN;
use crate::catalog::AgentKind;
use crate::compiler::LlmCompiler;
use crate::config::AgentConfig;
use crate::cot::Cot;
use crate::lats::Lats;
use crate::react::React;
use crate::reflexion::Reflexion;

/// An agent workflow as a resumable state machine.
///
/// The driver calls [`AgentPolicy::next`] with the result of the previous
/// op ([`OpResult::empty`] to start); the policy returns the next op,
/// ending with [`AgentOp::Finish`]. Calling `next` again after `Finish`
/// is a contract violation and may panic.
pub trait AgentPolicy: fmt::Debug {
    /// Which framework this is.
    fn kind(&self) -> AgentKind;

    /// Advances the state machine.
    fn next(&mut self, last: &OpResult, rng: &mut SimRng) -> AgentOp;
}

/// Builds an agent of `kind` for `task`.
///
/// # Panics
///
/// Panics if `config` is invalid or the agent does not support the
/// task's benchmark (see [`AgentKind::supports`]).
///
/// # Example
///
/// ```
/// use agentsim_agents::{build_agent, AgentConfig, AgentKind};
/// use agentsim_workloads::{Benchmark, TaskGenerator};
///
/// let task = TaskGenerator::new(Benchmark::Math, 1).task(0);
/// let agent = build_agent(AgentKind::Cot, &task, AgentConfig::default());
/// assert_eq!(agent.kind(), AgentKind::Cot);
/// ```
pub fn build_agent(kind: AgentKind, task: &Task, config: AgentConfig) -> Box<dyn AgentPolicy> {
    config.validate().expect("invalid agent config");
    assert!(
        kind.supports(task.benchmark),
        "{kind} is not evaluated on {} (see Table II)",
        task.benchmark
    );
    match kind {
        AgentKind::Cot => Box::new(Cot::new(task, config)),
        AgentKind::React => Box::new(React::new(task, config)),
        AgentKind::Reflexion => Box::new(Reflexion::new(task, config)),
        AgentKind::Lats => Box::new(Lats::new(task, config)),
        AgentKind::LlmCompiler => Box::new(LlmCompiler::new(task, config)),
        // Default Best-of-N width mirrors the LATS expansion width knob.
        AgentKind::BestOfN => Box::new(BestOfN::new(task, config, config.lats_children)),
    }
}

/// Mints distinct generation-stream seeds for a session's LLM calls.
#[derive(Debug, Clone)]
pub(crate) struct SeedSeq {
    base: u64,
    counter: u64,
}

impl SeedSeq {
    pub(crate) fn new(task: &Task, agent_tag: u64) -> Self {
        SeedSeq {
            base: hash_key(b"gen-seed", task.rng_key() ^ (agent_tag << 48)),
            counter: 0,
        }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.counter += 1;
        hash_key(b"call", self.base ^ self.counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_workloads::{Benchmark, TaskGenerator};

    #[test]
    fn factory_builds_each_kind() {
        let task = TaskGenerator::new(Benchmark::HotpotQa, 1).task(0);
        for kind in AgentKind::ALL {
            let agent = build_agent(kind, &task, AgentConfig::default());
            assert_eq!(agent.kind(), kind);
        }
    }

    #[test]
    #[should_panic(expected = "not evaluated on")]
    fn factory_rejects_unsupported_pairs() {
        let task = TaskGenerator::new(Benchmark::WebShop, 1).task(0);
        let _ = build_agent(AgentKind::Cot, &task, AgentConfig::default());
    }

    #[test]
    fn seed_seq_is_distinct_and_deterministic() {
        let task = TaskGenerator::new(Benchmark::Math, 1).task(0);
        let mut a = SeedSeq::new(&task, 2);
        let mut b = SeedSeq::new(&task, 2);
        let s1 = a.next();
        assert_eq!(s1, b.next());
        assert_ne!(s1, a.next());
        let mut c = SeedSeq::new(&task, 3);
        assert_ne!(s1, c.next());
    }
}
