//! Reflexion: ReAct trials with verbal self-reflection between them.
//!
//! After a failed trial the agent generates a reflection over the failed
//! trajectory (an extra LLM call whose output joins the long-term memory
//! part of the context), then retries with a cognition boost (the paper's
//! Fig. 3c). Sequential test-time scaling sweeps `max_trials`.

use agentsim_simkit::SimRng;
use agentsim_workloads::Task;

use crate::action::{AgentOp, OpResult, OutputKind, TaskOutcome};
use crate::catalog::AgentKind;
use crate::cognition::Cognition;
use crate::config::AgentConfig;
use crate::policy::AgentPolicy;
use crate::react::{AgentInner, ReactCore, TrialStep};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    InTrial,
    AwaitReflection,
    Done,
}

/// The Reflexion agent.
#[derive(Debug)]
pub struct Reflexion {
    inner: AgentInner,
    core: ReactCore,
    trial: u32,
    total_iterations: u32,
    phase: Phase,
}

impl Reflexion {
    /// Creates a Reflexion agent for `task`.
    pub fn new(task: &Task, config: AgentConfig) -> Self {
        Reflexion {
            inner: AgentInner::new(AgentKind::Reflexion, task, config),
            core: ReactCore::new(AgentKind::Reflexion, 1.0),
            trial: 1,
            total_iterations: 0,
            phase: Phase::InTrial,
        }
    }

    /// The number of reflections performed so far.
    pub fn reflections(&self) -> u32 {
        self.trial - 1
    }
}

impl AgentPolicy for Reflexion {
    fn kind(&self) -> AgentKind {
        AgentKind::Reflexion
    }

    fn next(&mut self, last: &OpResult, rng: &mut SimRng) -> AgentOp {
        match self.phase {
            Phase::InTrial => match self.core.advance(&mut self.inner, last, rng) {
                TrialStep::Op(op) => op,
                TrialStep::Done { solved } => {
                    self.total_iterations += self.core.iterations();
                    if solved || self.trial >= self.inner.config.max_trials {
                        self.phase = Phase::Done;
                        return AgentOp::Finish(TaskOutcome {
                            solved,
                            iterations: self.total_iterations,
                        });
                    }
                    // Reflect over the failed trajectory, then retry.
                    self.phase = Phase::AwaitReflection;
                    AgentOp::Llm(self.inner.llm_call(
                        OutputKind::Reflection,
                        AgentKind::Reflexion,
                        rng,
                    ))
                }
            },
            Phase::AwaitReflection => {
                let out = last.llm.first().expect("reflection result");
                self.inner.ctx.append_llm_output(out.gen_seed, out.tokens);
                self.trial += 1;
                let boost = Cognition::reflection_boost(self.reflections());
                self.core = ReactCore::new(AgentKind::Reflexion, boost);
                self.phase = Phase::InTrial;
                self.next(&OpResult::empty(), rng)
            }
            Phase::Done => panic!("Reflexion agent resumed after Finish"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_to_completion;
    use agentsim_workloads::{Benchmark, TaskGenerator};

    #[test]
    fn does_more_work_than_react() {
        // Fig. 4/5: Reflexion ≈ multiple ReAct trials plus reflections.
        let g = TaskGenerator::new(Benchmark::HotpotQa, 1);
        let (mut react_calls, mut reflexion_calls) = (0usize, 0usize);
        for (i, task) in g.tasks(40).enumerate() {
            let mut r = crate::react::React::new(&task, AgentConfig::default());
            react_calls += run_to_completion(&mut r, i as u64).llm_calls;
            let mut x = Reflexion::new(&task, AgentConfig::default());
            reflexion_calls += run_to_completion(&mut x, i as u64).llm_calls;
        }
        assert!(
            reflexion_calls as f64 > 1.3 * react_calls as f64,
            "react {react_calls}, reflexion {reflexion_calls}"
        );
    }

    #[test]
    fn accuracy_at_least_react() {
        let g = TaskGenerator::new(Benchmark::HotpotQa, 2);
        let (mut react_ok, mut reflexion_ok) = (0u32, 0u32);
        for (i, task) in g.tasks(300).enumerate() {
            let mut r = crate::react::React::new(&task, AgentConfig::default());
            react_ok += run_to_completion(&mut r, i as u64).outcome.solved as u32;
            let mut x = Reflexion::new(&task, AgentConfig::default());
            reflexion_ok += run_to_completion(&mut x, i as u64).outcome.solved as u32;
        }
        assert!(
            reflexion_ok >= react_ok,
            "react {react_ok}, reflexion {reflexion_ok}"
        );
    }

    #[test]
    fn single_trial_config_degenerates_to_react_shape() {
        let task = TaskGenerator::new(Benchmark::HotpotQa, 3).task(0);
        let cfg = AgentConfig::default().with_max_trials(1);
        let mut agent = Reflexion::new(&task, cfg);
        let trace = run_to_completion(&mut agent, 1);
        // No reflection calls: llm = iterations + 1 answer.
        assert_eq!(trace.llm_calls, trace.tool_calls + 1);
    }

    #[test]
    fn more_trials_cost_more_and_help_with_diminishing_returns() {
        // Fig. 21(a) shape: accuracy rises with reflection depth, the
        // marginal gain shrinks, and latency (proxied by llm calls) grows
        // roughly linearly.
        let g = TaskGenerator::new(Benchmark::HotpotQa, 4);
        let run = |trials: u32| {
            let (mut solved, mut calls) = (0u32, 0usize);
            for (i, task) in g.tasks(300).enumerate() {
                let cfg = AgentConfig::default().with_max_trials(trials);
                let mut agent = Reflexion::new(&task, cfg);
                let t = run_to_completion(&mut agent, i as u64);
                solved += t.outcome.solved as u32;
                calls += t.llm_calls;
            }
            (solved as f64 / 300.0, calls as f64 / 300.0)
        };
        let (a1, c1) = run(1);
        let (a3, c3) = run(3);
        let (a6, c6) = run(6);
        assert!(a3 >= a1, "{a1} -> {a3}");
        assert!(c3 > 1.5 * c1, "work grows: {c1} -> {c3}");
        assert!(c6 > c3);
        let gain_early = a3 - a1;
        let gain_late = a6 - a3;
        assert!(
            gain_late <= gain_early + 0.02,
            "diminishing: +{gain_early} then +{gain_late}"
        );
    }
}
