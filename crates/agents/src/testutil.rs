//! In-crate test driver: executes agent ops without an engine, recording
//! call counts and context statistics. The real timing-aware driver lives
//! in `agentsim-serving`.

use agentsim_simkit::SimRng;
use agentsim_tools::{ToolExecutor, ToolResult};

use crate::action::{AgentOp, LlmOutput, OpResult, TaskOutcome};
use crate::context::ContextBreakdown;
use crate::policy::AgentPolicy;

/// What a completed in-crate run looked like.
#[derive(Debug, Clone)]
pub(crate) struct TestTrace {
    pub llm_calls: usize,
    pub tool_calls: usize,
    pub llm_breakdowns: Vec<ContextBreakdown>,
    pub output_tokens: u64,
    pub outcome: TaskOutcome,
}

/// Runs `agent` to completion with a deterministic RNG.
///
/// # Panics
///
/// Panics if the agent emits more than 10,000 ops (runaway state machine).
pub(crate) fn run_to_completion(agent: &mut dyn AgentPolicy, seed: u64) -> TestTrace {
    let mut rng = SimRng::seed_from(seed);
    let tools = ToolExecutor::new();
    let mut tool_rng = rng.fork(0x700);
    let mut trace = TestTrace {
        llm_calls: 0,
        tool_calls: 0,
        llm_breakdowns: Vec::new(),
        output_tokens: 0,
        outcome: TaskOutcome {
            solved: false,
            iterations: 0,
        },
    };
    let mut last = OpResult::empty();
    for _ in 0..10_000 {
        match agent.next(&last, &mut rng) {
            AgentOp::Llm(spec) => {
                trace.llm_calls += 1;
                trace.output_tokens += spec.out_tokens as u64;
                trace.llm_breakdowns.push(spec.breakdown);
                last = OpResult::of_llm(spec.out_tokens, spec.gen_seed);
            }
            AgentOp::LlmBatch(specs) => {
                trace.llm_calls += specs.len();
                let outs: Vec<LlmOutput> = specs
                    .iter()
                    .map(|s| {
                        trace.output_tokens += s.out_tokens as u64;
                        trace.llm_breakdowns.push(s.breakdown);
                        LlmOutput {
                            tokens: s.out_tokens,
                            gen_seed: s.gen_seed,
                        }
                    })
                    .collect();
                last = OpResult {
                    llm: outs,
                    tools: Vec::new(),
                };
            }
            AgentOp::Tools(calls) => {
                trace.tool_calls += calls.len();
                let results: Vec<ToolResult> = calls
                    .iter()
                    .map(|c| tools.execute(c, &mut tool_rng))
                    .collect();
                last = OpResult {
                    llm: Vec::new(),
                    tools: results,
                };
            }
            AgentOp::OverlappedPlan {
                llm, tools: calls, ..
            } => {
                trace.llm_calls += 1;
                trace.tool_calls += calls.len();
                trace.output_tokens += llm.out_tokens as u64;
                trace.llm_breakdowns.push(llm.breakdown);
                let results: Vec<ToolResult> = calls
                    .iter()
                    .map(|c| tools.execute(c, &mut tool_rng))
                    .collect();
                last = OpResult {
                    llm: vec![LlmOutput {
                        tokens: llm.out_tokens,
                        gen_seed: llm.gen_seed,
                    }],
                    tools: results,
                };
            }
            AgentOp::Finish(outcome) => {
                trace.outcome = outcome;
                return trace;
            }
        }
    }
    panic!("agent did not finish within 10,000 ops");
}
