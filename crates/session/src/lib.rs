//! Shared session-driver core.
//!
//! Every serving driver in this workspace — the synchronous
//! single-request runner, the open-loop shared-replica simulator, the
//! multi-replica fleet, and the disaggregated prefill/decode pool —
//! steps the same thing: agent sessions issuing iterative LLM calls and
//! tool batches. This crate holds that shared machinery exactly once:
//!
//! - [`runner::SessionRunner`] — the per-session state machine (pending
//!   and completed LLM calls, tool execution, LLMCompiler overlap
//!   accounting, trace accumulation). Drivers keep only what actually
//!   differs between them: where LLM calls are submitted and how events
//!   are scheduled.
//! - [`client::ClientModel`] / [`client::ArrivalProcess`] — who submits
//!   work and when: open-loop Poisson (the paper's methodology),
//!   closed-loop with think times and multi-turn session reuse, and
//!   recorded-trace replay.
//! - [`trace::RequestTrace`] — the per-request execution record every
//!   driver produces.
//! - [`overload`] — the overload-resilience policy surface shared by the
//!   drivers: per-request deadlines, retry backoff, admission control,
//!   and queue disciplines, plus the common load-parameter validation.
//! - [`seeds`] — the named RNG-fork keys all drivers derive their
//!   deterministic sub-streams from.

pub mod cascade;
pub mod client;
pub mod overload;
pub mod runner;
pub mod seeds;
pub mod shard;
pub mod trace;

pub use cascade::CascadePolicy;
pub use client::{Arrival, ArrivalProcess, ClientModel};
pub use overload::{
    validate_load, AcceptAll, AdmissionController, AdmissionPolicy, AimdLimiter, OverloadPolicy,
    QueueDiscipline, RetryPolicy,
};
pub use runner::{CallDone, LlmOp, LlmSubmit, SessionCmd, SessionRunner, ToolRng};
pub use shard::{Resolved, ShardPool, StepOutput};
pub use trace::{LlmCallRecord, RequestTrace};
