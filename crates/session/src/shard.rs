//! Sharded engine execution with deterministic conservative sync.
//!
//! [`ShardPool`] partitions a fleet's replicas across worker threads and
//! lets a single-threaded coordinator keep running the *exact* sequential
//! event loop while the expensive part — engine step execution — happens
//! in parallel. The design invariant is bit-identical output: a parallel
//! run must produce the same `FleetReport`/`DisaggReport` (down to f64
//! bit patterns) as `threads(1)` at any thread count.
//!
//! # How determinism is preserved
//!
//! The sequential drivers push a step-done event into the
//! [`EventQueue`](agentsim_simkit::EventQueue) at the moment the step is
//! *kicked*, which fixes its FIFO rank among same-instant events. The
//! parallel coordinator does the same thing without knowing the step's end
//! time yet: it [reserves](agentsim_simkit::EventQueue::reserve_slot) the
//! next sequence number at kick time, sends the step to the owning shard,
//! and redeems the reservation when the worker's resolution arrives. The
//! queue order is therefore identical to the sequential run *by
//! construction* — workers only compute, they never order.
//!
//! Popping is gated conservatively: the head event `(T, q)` may only be
//! delivered once every unresolved kick `(t, s)` satisfies
//! `(t + L_r, s) > (T, q)`, where `L_r` is the *kicked replica's* own
//! `PerfModel::min_step_duration` — a hard lower bound on any step that
//! replica can produce. Until then the coordinator blocks on the next
//! resolution. The floor is per replica, not global: heterogeneous fleets
//! mix fast 8B replicas with slow 70B ones, and gating a fast replica's
//! kick with a slow replica's (larger) floor would deliver head events
//! that the fast step could still preempt — a soundness bug. The pool
//! derives each replica's floor from its engine at spawn, so drivers
//! cannot get this wrong.
//!
//! The coordinator never reads engine state directly; it maintains exact
//! mirrors of the per-replica waiting/running counts (updated by
//! submission, resolution, and step-done deltas) which is all the routing
//! policies and autoscale controllers consume. Replicas are assigned to
//! shards by `replica_index % threads` — a pure function of the index, so
//! shard membership (and thus behaviour) never depends on thread timing.
//!
//! Engine observers are not supported in parallel mode: a worker resolves
//! a step eagerly at kick time, before mid-step submissions from the
//! coordinator's timeline have been forwarded, so an observer would see a
//! smaller waiting queue than in the sequential run. This reorder is
//! invisible to reports (preempted requests re-enter at the queue front
//! and new submissions at the back, in both orders), but an observer
//! stream would differ; drivers assert no observer is attached.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::thread::JoinHandle;

use agentsim_kvcache::TokenBuf;
use agentsim_llm::{Engine, EngineRole, LlmCompletion, MigratedRequest, RequestId};
use agentsim_simkit::{SimDuration, SimTime, SlotId};

/// Commands a coordinator sends to one shard, in timeline order.
enum ShardCmd {
    /// Mirror of [`Engine::submit_with_priority`].
    Submit {
        replica: usize,
        now: SimTime,
        prompt: TokenBuf,
        out_tokens: u32,
        gen_seed: u64,
        priority: u32,
    },
    /// Mirror of [`Engine::submit_prefilled`].
    SubmitPrefilled {
        replica: usize,
        now: SimTime,
        migrated: MigratedRequest,
    },
    /// Start the next step and resolve it (end time, completions,
    /// migrations) immediately.
    StartStep {
        replica: usize,
        now: SimTime,
        slot: SlotId,
    },
    /// Mirror of [`Engine::cancel`]: the worker purges immediately (its
    /// engine is never mid-step when commands execute) and reports how
    /// many entries left the waiting/running sets, so the coordinator can
    /// settle its mirrors at the same timeline point the sequential
    /// driver would.
    Cancel {
        replica: usize,
        now: SimTime,
        id: RequestId,
    },
    /// Mirror of [`Engine::hint_next_use`]: a next-invocation prediction
    /// for the KV offload hierarchy. Fire-and-forget — hints change only
    /// eviction *order* inside the engine, never the coordinator-visible
    /// waiting/running counts, so no mirror delta or ack is needed;
    /// executing in channel (= timeline) order is enough for determinism.
    Hint {
        replica: usize,
        hashes: Vec<u64>,
        now: SimTime,
        at: SimTime,
    },
    /// Mirror of [`Engine::begin_drain`].
    BeginDrain { replica: usize },
    /// Mirror of [`Engine::finish_drain`].
    FinishDrain {
        replica: usize,
        now: SimTime,
        role: EngineRole,
    },
    /// Stop the worker; it returns its engines through its join handle.
    Shutdown,
}

/// What a worker reports back to the coordinator.
enum WorkerMsg {
    Step(StepResolution),
    /// A [`ShardCmd::Cancel`] was executed; mirrors settle from this.
    Cancelled(CancelAck),
    /// The worker panicked; the coordinator should join the threads to
    /// re-raise the payload instead of blocking forever.
    Died,
}

/// A worker's answer to [`ShardCmd::Cancel`]: what the purge removed.
/// Both counts are zero when the request had already finished (its
/// completion raced the cancellation).
struct CancelAck {
    replica: usize,
    from_waiting: usize,
    from_running: usize,
}

/// A worker's answer to [`ShardCmd::StartStep`].
struct StepResolution {
    replica: usize,
    slot: SlotId,
    ends: SimTime,
    admitted: usize,
    preempted: usize,
    completions: Vec<LlmCompletion>,
    migrations: Vec<MigratedRequest>,
}

/// The completions and migrations of one resolved step, handed to the
/// driver when the step-done event pops.
#[derive(Debug, Default)]
pub struct StepOutput {
    /// Requests that finished during the step.
    pub completions: Vec<LlmCompletion>,
    /// Requests a prefill-role engine released at their first token.
    pub migrations: Vec<MigratedRequest>,
}

/// A resolved step the driver must now schedule: redeem `slot` at `ends`
/// with the driver's own step-done event.
#[derive(Debug)]
pub struct Resolved {
    /// Which replica's step resolved.
    pub replica: usize,
    /// When the step ends.
    pub ends: SimTime,
    /// The queue reservation made at kick time.
    pub slot: SlotId,
}

/// An in-flight kick: the reservation point that gates popping, carrying
/// the kicked replica's own step-duration floor.
struct PendingKick {
    at: SimTime,
    seq: u64,
    floor: SimDuration,
}

/// Owns the worker threads and the coordinator-side mirrors of engine
/// state. See the [module docs](self) for the synchronization protocol.
pub struct ShardPool {
    cmd_tx: Vec<mpsc::Sender<ShardCmd>>,
    res_rx: mpsc::Receiver<WorkerMsg>,
    handles: Vec<JoinHandle<Vec<(usize, Engine)>>>,
    threads: usize,
    /// Per-replica hard lower bounds on step duration (the conservative
    /// lookahead), derived from each engine's own perf model at spawn.
    floors: Vec<SimDuration>,
    /// Kicks not yet resolved, in reservation (= send) order.
    pending: VecDeque<PendingKick>,
    /// Resolved outputs awaiting their step-done pop, per replica.
    staged: Vec<Option<StepOutput>>,
    /// Step resolutions received while blocking for a cancel ack; drained
    /// by [`try_resolve`](Self::try_resolve) before the channel is read.
    banked: VecDeque<Resolved>,
    /// Cancel acks received but not yet settled, per replica.
    acks: Vec<VecDeque<CancelAck>>,
    /// Cancels sent while the replica was busy; settled at
    /// [`take_step`](Self::take_step), matching the sequential engine's
    /// deferred step-boundary purge.
    cancel_owed: Vec<usize>,
    // -- exact mirrors of per-replica engine state --
    busy: Vec<bool>,
    waiting: Vec<usize>,
    running: Vec<usize>,
    preempt_credit: Vec<usize>,
    next_id: Vec<u64>,
}

impl ShardPool {
    /// Moves `engines` onto `threads` worker threads (replica `i` lives on
    /// shard `i % threads`) and returns the coordinator handle.
    ///
    /// Each replica's conservative lookahead is derived here from its own
    /// engine's `PerfModel::min_step_duration` — per replica, because a
    /// heterogeneous fleet has no single sound global floor.
    pub fn spawn(engines: Vec<Engine>, threads: usize) -> ShardPool {
        let replicas = engines.len();
        let threads = threads.clamp(1, replicas.max(1));
        let floors: Vec<SimDuration> = engines
            .iter()
            .map(|e| e.perf().min_step_duration())
            .collect();
        assert!(
            floors.iter().all(|&f| f > SimDuration::ZERO),
            "zero lookahead gives no parallelism"
        );
        let (res_tx, res_rx) = mpsc::channel();
        let mut cmd_tx = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        let mut sharded: Vec<Vec<(usize, Engine)>> = (0..threads).map(|_| Vec::new()).collect();
        for (idx, engine) in engines.into_iter().enumerate() {
            sharded[idx % threads].push((idx, engine));
        }
        for shard in sharded {
            let (tx, rx) = mpsc::channel();
            let res_tx = res_tx.clone();
            handles.push(std::thread::spawn(move || {
                let notify = res_tx.clone();
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_worker(shard, rx, res_tx)
                })) {
                    Ok(engines) => engines,
                    Err(payload) => {
                        // Wake a coordinator blocked on the result channel
                        // so it joins us and re-raises the panic.
                        let _ = notify.send(WorkerMsg::Died);
                        std::panic::resume_unwind(payload);
                    }
                }
            }));
            cmd_tx.push(tx);
        }
        ShardPool {
            cmd_tx,
            res_rx,
            handles,
            threads,
            floors,
            pending: VecDeque::new(),
            staged: (0..replicas).map(|_| None).collect(),
            banked: VecDeque::new(),
            acks: (0..replicas).map(|_| VecDeque::new()).collect(),
            cancel_owed: vec![0; replicas],
            busy: vec![false; replicas],
            waiting: vec![0; replicas],
            running: vec![0; replicas],
            preempt_credit: vec![0; replicas],
            next_id: vec![0; replicas],
        }
    }

    fn shard_of(&self, replica: usize) -> &mpsc::Sender<ShardCmd> {
        &self.cmd_tx[replica % self.threads]
    }

    fn send(&mut self, replica: usize, cmd: ShardCmd) {
        if self.shard_of(replica).send(cmd).is_err() {
            self.propagate_panic();
        }
    }

    /// Mirrors [`Engine::submit_with_priority`] on `replica`, returning
    /// the id the engine will assign (ids are sequential per engine, so
    /// the coordinator knows them without a round trip).
    pub fn submit(
        &mut self,
        replica: usize,
        now: SimTime,
        prompt: TokenBuf,
        out_tokens: u32,
        gen_seed: u64,
        priority: u32,
    ) -> RequestId {
        self.send(
            replica,
            ShardCmd::Submit {
                replica,
                now,
                prompt,
                out_tokens,
                gen_seed,
                priority,
            },
        );
        self.waiting[replica] += 1;
        let id = RequestId(self.next_id[replica]);
        self.next_id[replica] += 1;
        id
    }

    /// Mirrors [`Engine::submit_prefilled`] on `replica`.
    pub fn submit_prefilled(
        &mut self,
        replica: usize,
        now: SimTime,
        migrated: MigratedRequest,
    ) -> RequestId {
        self.send(
            replica,
            ShardCmd::SubmitPrefilled {
                replica,
                now,
                migrated,
            },
        );
        self.waiting[replica] += 1;
        let id = RequestId(self.next_id[replica]);
        self.next_id[replica] += 1;
        id
    }

    /// Whether a kick of `replica` would form a step right now — the exact
    /// condition under which the sequential driver's `start_step_if_idle`
    /// returns `Some`.
    pub fn wants_kick(&self, replica: usize) -> bool {
        !self.busy[replica] && self.waiting[replica] + self.running[replica] > 0
    }

    /// Kicks `replica` at `now` under the queue reservation `slot`.
    /// The caller must have checked [`wants_kick`](Self::wants_kick).
    pub fn kick(&mut self, replica: usize, now: SimTime, slot: SlotId) {
        debug_assert!(self.wants_kick(replica));
        self.busy[replica] = true;
        self.pending.push_back(PendingKick {
            at: now,
            seq: slot.seq(),
            floor: self.floors[replica],
        });
        self.send(replica, ShardCmd::StartStep { replica, now, slot });
    }

    /// Mirrors [`Engine::cancel`] on `replica` and settles the waiting /
    /// running mirrors at the same timeline point the sequential driver
    /// would observe the purge: immediately when the replica is idle
    /// (engine purges on the spot), or at the step-done pop when a step is
    /// in flight (engine defers the purge to the step boundary).
    pub fn cancel(&mut self, replica: usize, now: SimTime, id: RequestId) {
        self.send(replica, ShardCmd::Cancel { replica, now, id });
        if self.busy[replica] {
            self.cancel_owed[replica] += 1;
        } else {
            let ack = self.settle_ack(replica);
            self.waiting[replica] -= ack.from_waiting;
            self.running[replica] -= ack.from_running;
        }
    }

    /// Blocks until `replica`'s next cancel ack is available, banking any
    /// step resolutions (and other replicas' acks) that arrive first.
    fn settle_ack(&mut self, replica: usize) -> CancelAck {
        loop {
            if let Some(ack) = self.acks[replica].pop_front() {
                return ack;
            }
            match self.res_rx.recv() {
                Ok(WorkerMsg::Step(res)) => {
                    let resolved = self.apply(res);
                    self.banked.push_back(resolved);
                }
                Ok(WorkerMsg::Cancelled(ack)) => self.acks[ack.replica].push_back(ack),
                Ok(WorkerMsg::Died) | Err(_) => self.propagate_panic(),
            }
        }
    }

    /// Mirrors [`Engine::hint_next_use`] on `replica` (KV offload
    /// next-invocation predictions). Fire-and-forget.
    pub fn hint(&mut self, replica: usize, hashes: Vec<u64>, now: SimTime, at: SimTime) {
        self.send(
            replica,
            ShardCmd::Hint {
                replica,
                hashes,
                now,
                at,
            },
        );
    }

    /// Mirrors [`Engine::begin_drain`] on `replica`.
    pub fn begin_drain(&mut self, replica: usize) {
        self.send(replica, ShardCmd::BeginDrain { replica });
    }

    /// Mirrors [`Engine::finish_drain`] on `replica`.
    pub fn finish_drain(&mut self, replica: usize, now: SimTime, role: EngineRole) {
        self.send(replica, ShardCmd::FinishDrain { replica, now, role });
    }

    /// Whether any kicked step is still unresolved.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether the queue head with ordering key `key = (time, seq)` can be
    /// delivered now: no unresolved kick could produce a step-done that
    /// sorts at or before it.
    pub fn safe_before(&self, key: (SimTime, u64)) -> bool {
        // With per-replica floors the lower bounds (t + L_r, s) are not
        // monotone in send order — a fast replica kicked later can bound
        // earlier than a slow replica kicked first — so every unresolved
        // kick is checked, not just the front. `pending` is at most one
        // entry per replica.
        self.pending
            .iter()
            .all(|kick| (kick.at + kick.floor, kick.seq) > key)
    }

    /// Applies an already-received resolution; returns the event the
    /// driver must schedule.
    fn apply(&mut self, res: StepResolution) -> Resolved {
        let pos = self
            .pending
            .iter()
            .position(|k| k.seq == res.slot.seq())
            .expect("resolution for unknown kick");
        let kick = self.pending.remove(pos).expect("position just found");
        assert!(
            res.ends >= kick.at + kick.floor,
            "step duration under the replica's lookahead floor: kicked {} ended {}",
            kick.at,
            res.ends
        );
        // Admissions move waiting -> running at step start; preemptions
        // (running -> waiting) and completions are deferred to the pop so
        // mirrors match what the sequential driver would observe mid-step.
        self.waiting[res.replica] -= res.admitted;
        self.running[res.replica] += res.admitted;
        self.preempt_credit[res.replica] = res.preempted;
        let prev = self.staged[res.replica].replace(StepOutput {
            completions: res.completions,
            migrations: res.migrations,
        });
        debug_assert!(prev.is_none(), "two staged steps on one replica");
        Resolved {
            replica: res.replica,
            ends: res.ends,
            slot: res.slot,
        }
    }

    /// Receives one resolution without blocking, if any is ready.
    pub fn try_resolve(&mut self) -> Option<Resolved> {
        if let Some(resolved) = self.banked.pop_front() {
            return Some(resolved);
        }
        loop {
            match self.res_rx.try_recv() {
                Ok(WorkerMsg::Step(res)) => return Some(self.apply(res)),
                Ok(WorkerMsg::Cancelled(ack)) => self.acks[ack.replica].push_back(ack),
                Ok(WorkerMsg::Died) => self.propagate_panic(),
                Err(mpsc::TryRecvError::Empty) => return None,
                Err(mpsc::TryRecvError::Disconnected) => self.propagate_panic(),
            }
        }
    }

    /// Blocks until the next resolution arrives. Must only be called while
    /// [`has_pending`](Self::has_pending) is true.
    pub fn wait_resolve(&mut self) -> Resolved {
        if let Some(resolved) = self.banked.pop_front() {
            return resolved;
        }
        assert!(self.has_pending(), "waiting with no kick in flight");
        loop {
            match self.res_rx.recv() {
                Ok(WorkerMsg::Step(res)) => return self.apply(res),
                Ok(WorkerMsg::Cancelled(ack)) => self.acks[ack.replica].push_back(ack),
                Ok(WorkerMsg::Died) => self.propagate_panic(),
                Err(_) => self.propagate_panic(),
            }
        }
    }

    /// Hands the driver the completions and migrations of `replica`'s
    /// resolved step when its step-done event pops, and settles the
    /// deferred mirror deltas.
    pub fn take_step(&mut self, replica: usize) -> StepOutput {
        let out = self.staged[replica]
            .take()
            .expect("step-done popped before resolution");
        self.busy[replica] = false;
        let preempted = std::mem::take(&mut self.preempt_credit[replica]);
        self.running[replica] -= out.completions.len() + out.migrations.len() + preempted;
        self.waiting[replica] += preempted;
        // Cancels sent mid-step purge after the worker's step resolution,
        // so their mirror deltas settle after the step's own (production
        // first, purge second — the sequential boundary order).
        let owed = std::mem::take(&mut self.cancel_owed[replica]);
        for _ in 0..owed {
            let ack = self.settle_ack(replica);
            self.waiting[replica] -= ack.from_waiting;
            self.running[replica] -= ack.from_running;
        }
        out
    }

    /// Mirror of the replica's waiting-queue depth.
    pub fn queue_len(&self, replica: usize) -> usize {
        self.waiting[replica]
    }

    /// Mirror of the replica's running-set depth.
    pub fn running_len(&self, replica: usize) -> usize {
        self.running[replica]
    }

    /// Mirror of `queue_len + running_len` — the routing load metric.
    /// Exact even while steps are unresolved: admissions conserve the sum.
    pub fn load(&self, replica: usize) -> usize {
        self.waiting[replica] + self.running[replica]
    }

    /// Whether a step is in flight on `replica` (kicked, resolution not
    /// yet popped).
    pub fn busy(&self, replica: usize) -> bool {
        self.busy[replica]
    }

    /// Shuts the workers down and reassembles the engines in replica
    /// order. All kicks must have been resolved and taken.
    pub fn shutdown(mut self) -> Vec<Engine> {
        assert!(self.pending.is_empty(), "shutdown with steps in flight");
        debug_assert!(
            self.cancel_owed.iter().all(|&owed| owed == 0),
            "shutdown with unsettled cancels"
        );
        for tx in &self.cmd_tx {
            // A worker that already panicked has hung up; join below
            // surfaces the panic.
            let _ = tx.send(ShardCmd::Shutdown);
        }
        let mut indexed: Vec<(usize, Engine)> = Vec::new();
        for handle in self.handles.drain(..) {
            match handle.join() {
                Ok(engines) => indexed.extend(engines),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        indexed.sort_by_key(|&(idx, _)| idx);
        indexed.into_iter().map(|(_, engine)| engine).collect()
    }

    /// A worker died: join the threads to re-raise its panic on the
    /// coordinator.
    fn propagate_panic(&mut self) -> ! {
        for tx in &self.cmd_tx {
            let _ = tx.send(ShardCmd::Shutdown);
        }
        for handle in self.handles.drain(..) {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        unreachable!("a worker disconnected without panicking");
    }
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("threads", &self.threads)
            .field("replicas", &self.busy.len())
            .field("floors", &self.floors)
            .field("pending", &self.pending.len())
            .finish()
    }
}

/// Looks up a shard member by global replica index. Members are
/// `first, first + stride, first + 2*stride, ...` (the `% threads`
/// partition), so the local index is a division, not a search.
fn engine_mut(engines: &mut [(usize, Engine)], replica: usize) -> &mut Engine {
    let first = engines[0].0;
    let stride = if engines.len() >= 2 {
        engines[1].0 - engines[0].0
    } else {
        1
    };
    let (idx, engine) = &mut engines[(replica - first) / stride];
    debug_assert_eq!(*idx, replica);
    engine
}

/// One shard's event loop: execute engine commands in the order the
/// coordinator's timeline produced them.
fn run_worker(
    mut engines: Vec<(usize, Engine)>,
    rx: mpsc::Receiver<ShardCmd>,
    tx: mpsc::Sender<WorkerMsg>,
) -> Vec<(usize, Engine)> {
    for cmd in rx {
        match cmd {
            ShardCmd::Submit {
                replica,
                now,
                prompt,
                out_tokens,
                gen_seed,
                priority,
            } => {
                engine_mut(&mut engines, replica)
                    .submit_with_priority(now, prompt, out_tokens, gen_seed, priority);
            }
            ShardCmd::SubmitPrefilled {
                replica,
                now,
                migrated,
            } => {
                engine_mut(&mut engines, replica).submit_prefilled(now, &migrated);
            }
            ShardCmd::StartStep { replica, now, slot } => {
                let e = engine_mut(&mut engines, replica);
                let q_before = e.queue_len();
                let ends = e
                    .start_step_if_idle(now)
                    .expect("kicked replica must form a step");
                debug_assert!(ends >= now + e.perf().min_step_duration());
                let admitted = q_before - e.queue_len();
                let q_post = e.queue_len();
                // Resolving eagerly — before later mid-step submissions
                // arrive — is safe: preemptions re-enter at the queue
                // front and submissions at the back, so the final waiting
                // order is the same in either interleaving.
                let completions = e.complete_step(ends);
                let preempted = e.queue_len() - q_post;
                let migrations = e.take_migrations();
                if tx
                    .send(WorkerMsg::Step(StepResolution {
                        replica,
                        slot,
                        ends,
                        admitted,
                        preempted,
                        completions,
                        migrations,
                    }))
                    .is_err()
                {
                    // Coordinator is gone (it panicked); stop quietly.
                    break;
                }
            }
            ShardCmd::Cancel { replica, now, id } => {
                let e = engine_mut(&mut engines, replica);
                let (q_before, r_before) = (e.queue_len(), e.running_len());
                e.cancel(now, id);
                let ack = CancelAck {
                    replica,
                    from_waiting: q_before - e.queue_len(),
                    from_running: r_before - e.running_len(),
                };
                if tx.send(WorkerMsg::Cancelled(ack)).is_err() {
                    break;
                }
            }
            ShardCmd::Hint {
                replica,
                hashes,
                now,
                at,
            } => engine_mut(&mut engines, replica).hint_next_use(&hashes, now, at),
            ShardCmd::BeginDrain { replica } => engine_mut(&mut engines, replica).begin_drain(),
            ShardCmd::FinishDrain { replica, now, role } => {
                engine_mut(&mut engines, replica).finish_drain(now, role)
            }
            ShardCmd::Shutdown => break,
        }
    }
    engines
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_llm::EngineConfig;
    use agentsim_simkit::EventQueue;

    fn engines(n: usize) -> Vec<Engine> {
        (0..n)
            .map(|_| Engine::new(EngineConfig::a100_llama8b()))
            .collect()
    }

    fn floor() -> SimDuration {
        Engine::new(EngineConfig::a100_llama8b())
            .perf()
            .min_step_duration()
    }

    #[test]
    fn mirrors_track_a_full_request_lifecycle() {
        let mut pool = ShardPool::spawn(engines(2), 2);
        let mut queue: EventQueue<usize> = EventQueue::new();

        let id = pool.submit(0, SimTime::ZERO, TokenBuf::from_segment(1, 64), 4, 7, 0);
        assert_eq!(id, RequestId(0));
        assert_eq!(pool.load(0), 1);
        assert_eq!(pool.load(1), 0);
        assert!(pool.wants_kick(0));
        assert!(!pool.wants_kick(1));

        let mut completions = Vec::new();
        let mut now = SimTime::ZERO;
        while completions.is_empty() {
            while pool.wants_kick(0) {
                let slot = queue.reserve_slot();
                pool.kick(0, now, slot);
            }
            let resolved = pool.wait_resolve();
            queue.push_reserved(resolved.slot, resolved.ends, resolved.replica);
            let (at, replica) = queue.pop().expect("a step-done is scheduled");
            now = at;
            assert!(now >= SimTime::ZERO + floor());
            let out = pool.take_step(replica);
            completions.extend(out.completions);
        }
        assert_eq!(completions[0].id, RequestId(0));
        assert_eq!(completions[0].output_tokens, 4);
        assert_eq!(pool.load(0), 0);
        assert!(!pool.busy(0));

        let back = pool.shutdown();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].metrics().completed, 1);
        assert_eq!(back[1].metrics().completed, 0);
    }

    #[test]
    fn safe_before_gates_on_the_earliest_unresolved_kick() {
        let mut pool = ShardPool::spawn(engines(1), 1);
        let mut queue: EventQueue<()> = EventQueue::new();
        pool.submit(0, SimTime::ZERO, TokenBuf::from_segment(1, 64), 2, 0, 0);
        let slot = queue.reserve_slot();
        let kick_seq = slot.seq();
        pool.kick(0, SimTime::ZERO, slot);

        // An event before the kick's floor is deliverable; one at the
        // floor is not (the unresolved step could end exactly there and
        // reserved an earlier seq).
        let before = SimTime::ZERO + floor() - SimDuration::from_micros(1);
        assert!(pool.safe_before((before, kick_seq + 1)));
        assert!(!pool.safe_before((SimTime::ZERO + floor(), kick_seq + 1)));

        let resolved = pool.wait_resolve();
        assert!(pool.safe_before((SimTime::MAX, u64::MAX)));
        queue.push_reserved(resolved.slot, resolved.ends, ());
        let (mut now, ()) = queue.pop().expect("step-done scheduled");
        pool.take_step(0);
        // Drain remaining decode steps so shutdown sees no pending work.
        while pool.wants_kick(0) {
            let slot = queue.reserve_slot();
            pool.kick(0, now, slot);
            let r = pool.wait_resolve();
            now = r.ends;
            pool.take_step(r.replica);
        }
        pool.shutdown();
    }

    #[test]
    fn heterogeneous_replicas_gate_on_their_own_floor() {
        // Regression test for the global-lookahead unsoundness: with a
        // single fleet-wide floor taken from replica 0, a premium
        // replica 0 (huge step floor) would let events pop inside a
        // cheap replica 1's much smaller step window — replica 1's step
        // could then resolve *earlier* than an already-delivered event.
        // Each pending kick must gate on its own replica's floor.
        let premium = Engine::new(EngineConfig::h100x4_llama70b());
        let cheap = Engine::new(EngineConfig::a100_llama8b());
        let f_premium = premium.perf().min_step_duration();
        let f_cheap = cheap.perf().min_step_duration();
        assert!(
            f_premium > f_cheap,
            "the regression needs replica 0's floor ({f_premium:?}) above replica 1's ({f_cheap:?})"
        );

        let mut pool = ShardPool::spawn(vec![premium, cheap], 2);
        let mut queue: EventQueue<usize> = EventQueue::new();
        pool.submit(1, SimTime::ZERO, TokenBuf::from_segment(1, 64), 2, 0, 0);
        let slot = queue.reserve_slot();
        let kick_seq = slot.seq();
        pool.kick(1, SimTime::ZERO, slot);

        // Below the cheap replica's own floor: deliverable.
        let before = SimTime::ZERO + f_cheap - SimDuration::from_micros(1);
        assert!(pool.safe_before((before, kick_seq + 1)));
        // At the cheap replica's floor: NOT deliverable — its pending
        // step could end exactly there. A global floor inherited from
        // replica 0 would have (wrongly) admitted everything up to
        // `f_premium`.
        assert!(!pool.safe_before((SimTime::ZERO + f_cheap, kick_seq + 1)));

        // Drain so shutdown sees no pending work.
        let r = pool.wait_resolve();
        queue.push_reserved(r.slot, r.ends, r.replica);
        let (mut now, replica) = queue.pop().expect("step-done scheduled");
        assert!(now >= SimTime::ZERO + f_cheap, "floors really are floors");
        pool.take_step(replica);
        while pool.wants_kick(1) {
            let slot = queue.reserve_slot();
            pool.kick(1, now, slot);
            let r = pool.wait_resolve();
            now = r.ends;
            pool.take_step(r.replica);
        }
        pool.shutdown();
    }

    #[test]
    fn cancel_settles_mirrors_idle_and_mid_step() {
        let mut pool = ShardPool::spawn(engines(1), 1);
        let mut queue: EventQueue<usize> = EventQueue::new();

        // Idle cancel of a waiting request settles immediately.
        let a = pool.submit(0, SimTime::ZERO, TokenBuf::from_segment(1, 64), 4, 7, 0);
        let b = pool.submit(0, SimTime::ZERO, TokenBuf::from_segment(2, 64), 4, 8, 0);
        assert_eq!(pool.load(0), 2);
        pool.cancel(0, SimTime::ZERO, a);
        assert_eq!(pool.load(0), 1);

        // Mid-step cancel of the running survivor settles at take_step.
        let slot = queue.reserve_slot();
        pool.kick(0, SimTime::ZERO, slot);
        pool.cancel(0, SimTime::ZERO, b);
        let resolved = pool.wait_resolve();
        queue.push_reserved(resolved.slot, resolved.ends, resolved.replica);
        let (_, replica) = queue.pop().expect("a step-done is scheduled");
        let out = pool.take_step(replica);
        assert!(out.completions.is_empty(), "cancelled before finishing");
        assert_eq!(pool.load(0), 0);
        assert!(!pool.wants_kick(0));

        let back = pool.shutdown();
        assert_eq!(back[0].metrics().abandoned, 2);
        assert_eq!(back[0].metrics().completed, 0);
    }

    #[test]
    #[should_panic(expected = "can never admit")]
    fn worker_panics_propagate_to_the_coordinator() {
        // A prompt that can never fit the KV pool panics on the worker;
        // the coordinator must re-raise it, not hang.
        let cfg = EngineConfig::a100_llama8b().with_kv_fraction(0.004);
        let mut pool = ShardPool::spawn(vec![Engine::new(cfg)], 1);
        let mut queue: EventQueue<()> = EventQueue::new();
        pool.submit(0, SimTime::ZERO, TokenBuf::from_segment(1, 4096), 4, 0, 0);
        let slot = queue.reserve_slot();
        pool.kick(0, SimTime::ZERO, slot);
        let _ = pool.wait_resolve();
    }
}
