//! Overload-resilience policy: deadlines, retries, admission control,
//! and queue disciplines.
//!
//! The paper's capacity conclusions assume every arrival is served to
//! completion, but real agent services shed load: clients give up after
//! a deadline, front-ends retry with backoff, and serving layers bound
//! concurrency to avoid congestion collapse. This module holds the
//! *policy* vocabulary shared by the fleet and disaggregated drivers —
//! the drivers own the mechanics (cancellation, dispatch queues, retry
//! scheduling) so that every decision happens on the coordinator thread
//! and the parallel execution paths stay bit-identical.
//!
//! An [`OverloadPolicy`] combines four knobs:
//!
//! * **deadline** — how long a client waits for a logical turn before
//!   abandoning it,
//! * **cancellation** — whether the server tears the attempt down at
//!   expiry ([`agentsim_llm` engines][Engine-cancel] release KV and stop
//!   burning steps) or keeps serving a request nobody will read,
//! * **retry** — an exponential-backoff re-issue policy
//!   ([`RetryPolicy`]),
//! * **admission** — a per-replica concurrency limit
//!   ([`AdmissionController`]): the naive [`AcceptAll`] baseline or an
//!   AIMD limiter ([`AimdLimiter`]) that backs off on timeouts, plus the
//!   dispatch-queue discipline ([`QueueDiscipline`]) applied while ops
//!   wait for an admission slot.
//!
//! [Engine-cancel]: https://docs.rs/agentsim-llm

use agentsim_simkit::SimDuration;

use crate::client::ClientModel;

/// Validates the offered-load parameters every serving driver shares.
///
/// All three drivers (single-engine serving, fleet, disaggregated) route
/// their `qps`/`num_requests` arguments through here so the checks — and
/// the panic messages — cannot drift apart again.
///
/// # Panics
///
/// Panics if `qps` is not a positive finite number or `num_requests` is
/// zero.
pub fn validate_load(qps: f64, num_requests: u64) {
    assert!(
        qps.is_finite() && qps > 0.0,
        "offered load must be a positive finite qps, got {qps}"
    );
    assert!(num_requests > 0, "a run must issue at least one request");
}

/// How queued work waiting for an admission slot is ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// First-in first-out (fair, but under overload every request waits
    /// long enough to miss its deadline).
    #[default]
    Fifo,
    /// Last-in first-out (newest work first: fresh requests still have
    /// deadline budget left, old ones were probably abandoned anyway).
    Lifo,
    /// Earliest-deadline-first service, and expired entries are dropped
    /// at dispatch instead of being started for a client that already
    /// gave up. Requires a deadline.
    DeadlineDrop,
}

impl QueueDiscipline {
    /// Stable lowercase name (used by reports).
    pub fn name(self) -> &'static str {
        match self {
            QueueDiscipline::Fifo => "fifo",
            QueueDiscipline::Lifo => "lifo",
            QueueDiscipline::DeadlineDrop => "deadline-drop",
        }
    }
}

impl std::fmt::Display for QueueDiscipline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Retry-with-exponential-backoff for turns whose deadline expired.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Re-issues after the initial attempt (attempt indices `1..=max`).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base: SimDuration,
    /// Multiplier applied per subsequent retry (≥ 1).
    pub backoff_mult: f64,
}

impl RetryPolicy {
    /// A conventional default: 2 retries, 1s base, doubling.
    pub fn standard() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base: SimDuration::from_secs(1),
            backoff_mult: 2.0,
        }
    }

    /// Backoff delay after failed attempt number `attempt` (0-based):
    /// `base * mult^attempt`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let scale = self.backoff_mult.powi(attempt as i32);
        SimDuration::from_secs_f64(self.backoff_base.as_secs_f64() * scale)
    }

    fn validate(&self) {
        assert!(
            self.backoff_base > SimDuration::ZERO,
            "retry backoff base must be positive"
        );
        assert!(
            self.backoff_mult.is_finite() && self.backoff_mult >= 1.0,
            "retry backoff multiplier must be finite and >= 1, got {}",
            self.backoff_mult
        );
    }
}

/// A per-replica concurrency limiter the drivers consult before moving
/// queued work onto an engine.
///
/// Implementations must be deterministic pure functions of their call
/// sequence — drivers invoke them only from the coordinator thread, in
/// event order, which is what keeps the parallel path bit-identical.
pub trait AdmissionController: std::fmt::Debug + Send {
    /// Maximum engine calls this replica may have in flight right now.
    fn limit(&self) -> usize;
    /// A call completed and was delivered to a live client.
    fn on_success(&mut self);
    /// A deadline expired while this replica held calls for the turn.
    fn on_timeout(&mut self);
}

/// The naive baseline: no limit, every arrival is admitted immediately.
/// This reproduces the historical driver behaviour bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct AcceptAll;

impl AdmissionController for AcceptAll {
    fn limit(&self) -> usize {
        usize::MAX
    }
    fn on_success(&mut self) {}
    fn on_timeout(&mut self) {}
}

/// Additive-increase / multiplicative-decrease concurrency limiter (the
/// TCP-style gradient used by Netflix's `concurrency-limits` and the
/// `squeeze` crate): grow the limit slowly while work succeeds, cut it
/// sharply when deadlines expire.
#[derive(Debug, Clone, PartialEq)]
pub struct AimdLimiter {
    limit: f64,
    min: f64,
    max: f64,
    increase: f64,
    decrease: f64,
}

impl AimdLimiter {
    /// Builds a limiter from a validated [`AdmissionPolicy::Aimd`].
    pub fn new(initial: f64, min: f64, max: f64, increase: f64, decrease: f64) -> Self {
        let limiter = AimdLimiter {
            limit: initial,
            min,
            max,
            increase,
            decrease,
        };
        limiter.validate();
        limiter
    }

    fn validate(&self) {
        assert!(
            self.min >= 1.0 && self.min <= self.limit && self.limit <= self.max,
            "aimd limits must satisfy 1 <= min <= initial <= max, got \
             min={} initial={} max={}",
            self.min,
            self.limit,
            self.max
        );
        assert!(
            self.increase.is_finite() && self.increase > 0.0,
            "aimd additive increase must be positive, got {}",
            self.increase
        );
        assert!(
            self.decrease > 0.0 && self.decrease < 1.0,
            "aimd multiplicative decrease must be in (0, 1), got {}",
            self.decrease
        );
    }

    /// The current fractional limit (floored by [`AdmissionController::limit`]).
    pub fn current(&self) -> f64 {
        self.limit
    }
}

impl AdmissionController for AimdLimiter {
    fn limit(&self) -> usize {
        self.limit as usize
    }

    fn on_success(&mut self) {
        // Additive increase spread over a window of `limit` successes:
        // roughly +increase per round trip, as in TCP congestion control.
        self.limit = (self.limit + self.increase / self.limit).min(self.max);
    }

    fn on_timeout(&mut self) {
        self.limit = (self.limit * self.decrease).max(self.min);
    }
}

/// Declarative admission-control choice, carried by [`OverloadPolicy`].
/// Cheap to clone; drivers call [`AdmissionPolicy::build`] once per
/// replica.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum AdmissionPolicy {
    /// No limit (the naive baseline).
    #[default]
    AcceptAll,
    /// An [`AimdLimiter`] per replica.
    Aimd {
        /// Starting concurrency limit.
        initial: f64,
        /// Floor the limit never drops below (≥ 1).
        min: f64,
        /// Ceiling the limit never exceeds.
        max: f64,
        /// Additive increase per successful window.
        increase: f64,
        /// Multiplicative decrease factor on timeout, in `(0, 1)`.
        decrease: f64,
    },
}

impl AdmissionPolicy {
    /// A reasonable adaptive default: start at 8 concurrent calls,
    /// halve on timeout, floor 1, ceiling 64.
    pub fn aimd_default() -> Self {
        AdmissionPolicy::Aimd {
            initial: 8.0,
            min: 1.0,
            max: 64.0,
            increase: 1.0,
            decrease: 0.5,
        }
    }

    /// Instantiates the controller for one replica.
    pub fn build(&self) -> Box<dyn AdmissionController> {
        match *self {
            AdmissionPolicy::AcceptAll => Box::new(AcceptAll),
            AdmissionPolicy::Aimd {
                initial,
                min,
                max,
                increase,
                decrease,
            } => Box::new(AimdLimiter::new(initial, min, max, increase, decrease)),
        }
    }

    /// Stable lowercase name (used by reports).
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::AcceptAll => "accept-all",
            AdmissionPolicy::Aimd { .. } => "aimd",
        }
    }

    fn validate(&self) {
        // Construction runs the full invariant check.
        let _ = self.build();
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The complete overload model a driver runs under. The default
/// ([`OverloadPolicy::none`]) disables every mechanism and reproduces
/// the historical no-deadline behaviour bit-for-bit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OverloadPolicy {
    /// Client patience per logical turn, measured from the turn's
    /// arrival. `None` disables deadlines (and everything downstream).
    pub deadline: Option<SimDuration>,
    /// Tear the attempt down at expiry: cancel its in-flight engine
    /// calls (KV released at the next step boundary) and free its
    /// session slot. Without this the server keeps serving the request
    /// and the finished work is counted as late/wasted.
    pub cancel_on_expiry: bool,
    /// Re-issue expired turns with exponential backoff. Requires
    /// `cancel_on_expiry` (two live attempts of one turn cannot share a
    /// session slot).
    pub retry: Option<RetryPolicy>,
    /// Per-replica concurrency limiter.
    pub admission: AdmissionPolicy,
    /// Ordering of ops queued while a replica is at its limit.
    pub discipline: QueueDiscipline,
}

impl OverloadPolicy {
    /// No deadlines, no retries, accept-all admission: the historical
    /// behaviour.
    pub fn none() -> Self {
        OverloadPolicy::default()
    }

    /// Whether any overload mechanism is active.
    pub fn is_active(&self) -> bool {
        self != &OverloadPolicy::none()
    }

    /// Builder: sets the per-turn deadline.
    pub fn deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder: enables server-side cancellation at expiry.
    pub fn cancel_on_expiry(mut self) -> Self {
        self.cancel_on_expiry = true;
        self
    }

    /// Builder: sets the retry policy (implies cancellation).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Builder: sets the admission policy.
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Builder: sets the dispatch-queue discipline.
    pub fn discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Checks internal consistency and compatibility with `client`.
    ///
    /// # Panics
    ///
    /// Panics when the combination cannot run: retries without
    /// cancellation, cancellation or deadline-drop without a deadline,
    /// non-positive deadline, invalid retry/AIMD parameters, or a
    /// closed-loop client with deadlines but no cancellation (the next
    /// turn would collide with the still-running expired attempt in the
    /// same session slot).
    pub fn validate(&self, client: &ClientModel) {
        if let Some(deadline) = self.deadline {
            assert!(
                deadline > SimDuration::ZERO,
                "deadline must be positive when set"
            );
        }
        assert!(
            !self.cancel_on_expiry || self.deadline.is_some(),
            "cancel_on_expiry requires a deadline"
        );
        assert!(
            self.retry.is_none() || self.cancel_on_expiry,
            "a retry policy requires cancel_on_expiry: the expired attempt \
             must be torn down before its retry reuses the session slot"
        );
        assert!(
            self.discipline != QueueDiscipline::DeadlineDrop || self.deadline.is_some(),
            "the deadline-drop discipline requires a deadline"
        );
        if matches!(client, ClientModel::ClosedLoop { .. }) {
            assert!(
                self.deadline.is_none() || self.cancel_on_expiry,
                "a closed-loop client with deadlines requires cancel_on_expiry: \
                 the user's next turn reuses the expired attempt's session slot"
            );
        }
        if let Some(retry) = &self.retry {
            retry.validate();
        }
        self.admission.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_load_accepts_sane_parameters() {
        validate_load(0.5, 1);
        validate_load(1e6, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "positive finite qps")]
    fn validate_load_rejects_zero_qps() {
        validate_load(0.0, 10);
    }

    #[test]
    #[should_panic(expected = "positive finite qps")]
    fn validate_load_rejects_nan_qps() {
        validate_load(f64::NAN, 10);
    }

    #[test]
    #[should_panic(expected = "positive finite qps")]
    fn validate_load_rejects_infinite_qps() {
        validate_load(f64::INFINITY, 10);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn validate_load_rejects_zero_requests() {
        validate_load(1.0, 0);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let r = RetryPolicy {
            max_retries: 3,
            backoff_base: SimDuration::from_secs(1),
            backoff_mult: 2.0,
        };
        assert_eq!(r.backoff(0), SimDuration::from_secs(1));
        assert_eq!(r.backoff(1), SimDuration::from_secs(2));
        assert_eq!(r.backoff(2), SimDuration::from_secs(4));
        // A multiplier of exactly 1 keeps the delay flat.
        let flat = RetryPolicy {
            backoff_mult: 1.0,
            ..r
        };
        assert_eq!(flat.backoff(5), SimDuration::from_secs(1));
    }

    #[test]
    fn accept_all_never_limits() {
        let mut c = AcceptAll;
        assert_eq!(c.limit(), usize::MAX);
        c.on_timeout();
        c.on_success();
        assert_eq!(c.limit(), usize::MAX);
    }

    #[test]
    fn aimd_limiter_grows_additively_and_shrinks_multiplicatively() {
        let mut l = AimdLimiter::new(8.0, 1.0, 64.0, 1.0, 0.5);
        assert_eq!(l.limit(), 8);
        l.on_timeout();
        assert_eq!(l.limit(), 4);
        l.on_timeout();
        l.on_timeout();
        l.on_timeout();
        assert_eq!(l.limit(), 1, "floored at min");
        // Growth is gradual: ~limit successes raise the limit by ~increase.
        let before = l.current();
        for _ in 0..4 {
            l.on_success();
        }
        assert!(l.current() > before + 1.0);
        for _ in 0..100_000 {
            l.on_success();
        }
        assert_eq!(l.limit(), 64, "capped at max");
    }

    #[test]
    fn aimd_limiter_is_deterministic() {
        let drive = || {
            let mut l = AimdLimiter::new(8.0, 1.0, 64.0, 1.0, 0.5);
            for i in 0..1000 {
                if i % 7 == 0 {
                    l.on_timeout();
                } else {
                    l.on_success();
                }
            }
            l.current().to_bits()
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    #[should_panic(expected = "1 <= min <= initial <= max")]
    fn aimd_rejects_inverted_bounds() {
        let _ = AimdLimiter::new(8.0, 16.0, 64.0, 1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "multiplicative decrease must be in (0, 1)")]
    fn aimd_rejects_growing_decrease() {
        let _ = AimdLimiter::new(8.0, 1.0, 64.0, 1.0, 1.5);
    }

    #[test]
    fn default_policy_is_inactive_and_valid_for_every_client() {
        let p = OverloadPolicy::none();
        assert!(!p.is_active());
        p.validate(&ClientModel::OpenLoopPoisson);
        p.validate(&ClientModel::ClosedLoop {
            concurrency: 4,
            think_time: SimDuration::from_secs(1),
        });
        p.validate(&ClientModel::TraceReplay { gaps: vec![] });
    }

    #[test]
    fn full_policy_validates() {
        let p = OverloadPolicy::none()
            .deadline(SimDuration::from_secs(30))
            .cancel_on_expiry()
            .retry(RetryPolicy::standard())
            .admission(AdmissionPolicy::aimd_default())
            .discipline(QueueDiscipline::DeadlineDrop);
        assert!(p.is_active());
        p.validate(&ClientModel::OpenLoopPoisson);
    }

    #[test]
    #[should_panic(expected = "requires cancel_on_expiry")]
    fn retry_without_cancellation_is_rejected() {
        OverloadPolicy::none()
            .deadline(SimDuration::from_secs(30))
            .retry(RetryPolicy::standard())
            .validate(&ClientModel::OpenLoopPoisson);
    }

    #[test]
    #[should_panic(expected = "requires a deadline")]
    fn cancellation_without_deadline_is_rejected() {
        OverloadPolicy::none()
            .cancel_on_expiry()
            .validate(&ClientModel::OpenLoopPoisson);
    }

    #[test]
    #[should_panic(expected = "deadline-drop discipline requires a deadline")]
    fn deadline_drop_without_deadline_is_rejected() {
        OverloadPolicy::none()
            .discipline(QueueDiscipline::DeadlineDrop)
            .validate(&ClientModel::OpenLoopPoisson);
    }

    #[test]
    #[should_panic(expected = "closed-loop client with deadlines requires cancel_on_expiry")]
    fn closed_loop_with_deadline_requires_cancellation() {
        OverloadPolicy::none()
            .deadline(SimDuration::from_secs(30))
            .validate(&ClientModel::ClosedLoop {
                concurrency: 2,
                think_time: SimDuration::ZERO,
            });
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_is_rejected() {
        OverloadPolicy::none()
            .deadline(SimDuration::ZERO)
            .validate(&ClientModel::OpenLoopPoisson);
    }

    #[test]
    fn discipline_and_policy_names_are_stable() {
        assert_eq!(QueueDiscipline::Fifo.to_string(), "fifo");
        assert_eq!(QueueDiscipline::Lifo.name(), "lifo");
        assert_eq!(QueueDiscipline::DeadlineDrop.name(), "deadline-drop");
        assert_eq!(AdmissionPolicy::AcceptAll.to_string(), "accept-all");
        assert_eq!(AdmissionPolicy::aimd_default().name(), "aimd");
    }
}
