//! Named RNG-fork keys shared by every serving driver.
//!
//! All stochastic behaviour flows through [`agentsim_simkit::SimRng`]
//! sub-streams keyed by these constants. They used to be magic numbers
//! copy-pasted across four drivers; keeping them here makes the streams
//! greppable and guarantees that two drivers given the same seed derive
//! *identical* randomness — the property the what-if experiments
//! (colocated vs disaggregated, open- vs closed-loop) rely on.
//!
//! Changing any value is a breaking change to every golden fingerprint.

/// Root-stream key of the shared-replica drivers (`ServingSim`,
/// `DisaggSim`): `SimRng::seed_from(config.seed ^ SERVING_ROOT)`.
/// Both drivers deliberately share one root so a disaggregated run and a
/// colocated run at the same seed see identical arrivals and sessions.
pub const SERVING_ROOT: u64 = 0x5E61;

/// Root-stream key of the multi-replica fleet driver (`FleetSim`).
pub const FLEET_ROOT: u64 = 0xF1EE7;

/// Fork key of the arrival process stream (inter-arrival gaps, think
/// times): `root.fork(ARRIVALS)`.
pub const ARRIVALS: u64 = 0xA221;

/// Per-turn fork key of an agent session's decision stream:
/// `root.fork(turn ^ AGENT_SESSION)`.
pub const AGENT_SESSION: u64 = 0xA6E7;

/// Per-turn fork key of a chatbot session's stream:
/// `root.fork(turn ^ CHATBOT_SESSION)`.
pub const CHATBOT_SESSION: u64 = 0xC4A7;

/// Per-turn fork key of the agent-vs-chatbot class draw in mixed
/// workloads: `root.fork(turn ^ MIXED_CLASS)`.
pub const MIXED_CLASS: u64 = 0x111C;

/// XOR'd into the time-keyed tool-RNG fork when launching the tools of
/// an overlapped plan, so they draw independently of a plain tool batch
/// issued at the same instant.
pub const OVERLAP_TOOLS: u64 = 0x0B;

/// Fork key of the single-request driver's agent decision stream
/// (`SingleRequest` derives per-task roots, not per-arrival ones).
pub const SINGLE_AGENT: u64 = 1;

/// Fork key of the single-request driver's sequential tool stream.
pub const SINGLE_TOOLS: u64 = 2;
