//! Named RNG-fork keys shared by every serving driver.
//!
//! All stochastic behaviour flows through [`agentsim_simkit::SimRng`]
//! sub-streams keyed by these constants. They used to be magic numbers
//! copy-pasted across four drivers; keeping them here makes the streams
//! greppable and guarantees that two drivers given the same seed derive
//! *identical* randomness — the property the what-if experiments
//! (colocated vs disaggregated, open- vs closed-loop) rely on.
//!
//! Changing any value is a breaking change to every golden fingerprint.

/// Root-stream key of the shared-replica drivers (`ServingSim`,
/// `DisaggSim`): `SimRng::seed_from(config.seed ^ SERVING_ROOT)`.
/// Both drivers deliberately share one root so a disaggregated run and a
/// colocated run at the same seed see identical arrivals and sessions.
pub const SERVING_ROOT: u64 = 0x5E61;

/// Root-stream key of the multi-replica fleet driver (`FleetSim`).
pub const FLEET_ROOT: u64 = 0xF1EE7;

/// Fork key of the arrival process stream (inter-arrival gaps, think
/// times): `root.fork(ARRIVALS)`.
pub const ARRIVALS: u64 = 0xA221;

/// Per-turn fork key of an agent session's decision stream:
/// `root.fork(turn ^ AGENT_SESSION)`.
pub const AGENT_SESSION: u64 = 0xA6E7;

/// Per-turn fork key of a chatbot session's stream:
/// `root.fork(turn ^ CHATBOT_SESSION)`.
pub const CHATBOT_SESSION: u64 = 0xC4A7;

/// Per-turn fork key of the agent-vs-chatbot class draw in mixed
/// workloads: `root.fork(turn ^ MIXED_CLASS)`.
pub const MIXED_CLASS: u64 = 0x111C;

/// XOR'd into the time-keyed tool-RNG fork when launching the tools of
/// an overlapped plan, so they draw independently of a plain tool batch
/// issued at the same instant.
pub const OVERLAP_TOOLS: u64 = 0x0B;

/// Fork key of the single-request driver's agent decision stream
/// (`SingleRequest` derives per-task roots, not per-arrival ones).
pub const SINGLE_AGENT: u64 = 1;

/// Fork key of the single-request driver's sequential tool stream.
pub const SINGLE_TOOLS: u64 = 2;

/// Mixed into [`shard_seed`] so per-shard streams never collide with the
/// other named forks of the same root.
pub const SHARD: u64 = 0x5AAD;

/// Derives the root seed of shard `shard` from a driver root seed.
///
/// Keyed strictly by the *shard index* — a pure function of replica
/// numbering — never by a thread id or spawn order, so a parallel run
/// draws identical randomness at any thread count (and on one thread).
/// The SplitMix64 finalizer decorrelates consecutive indices.
pub fn shard_seed(root: u64, shard: u64) -> u64 {
    let mut z = root ^ SHARD ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The derivation is part of the golden-fingerprint contract: changing
    /// it silently would shift every seeded parallel scenario.
    #[test]
    fn shard_seed_derivation_is_pinned() {
        assert_eq!(shard_seed(FLEET_ROOT, 0), 0x06e2_54b2_b744_a706);
        assert_eq!(shard_seed(FLEET_ROOT, 1), 0x0ff6_759f_eceb_9443);
        assert_eq!(shard_seed(FLEET_ROOT, 2), 0x3289_8120_0773_95a5);
        assert_eq!(shard_seed(42, 7), 0xe0b2_773f_064d_4a3c);
    }

    /// Consecutive shard indices must decorrelate, and the derivation
    /// must depend only on `(root, shard)`.
    #[test]
    fn shard_seed_streams_are_distinct() {
        let seeds: Vec<u64> = (0..64).map(|s| shard_seed(FLEET_ROOT, s)).collect();
        for (i, a) in seeds.iter().enumerate() {
            assert_ne!(*a, 0);
            assert_ne!(*a, FLEET_ROOT);
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_ne!(shard_seed(SERVING_ROOT, 3), shard_seed(FLEET_ROOT, 3));
    }
}
