//! Client models: who submits work to the server, and when.
//!
//! The paper's serving sections (and most LLM-serving benchmarks) assume
//! an *open-loop* client — a Poisson process that keeps firing regardless
//! of how the server is doing. Real agent deployments are largely
//! *closed-loop*: a bounded user population where each user waits for
//! their current task to finish, thinks, and submits the next one from
//! the **same session**, so affinity routing and prefix caching carry
//! state across turns.
//!
//! Every serving driver consumes these through the [`ArrivalProcess`]
//! trait: a lazy generator that is asked for the next arrival when the
//! previous one fires ([`ArrivalProcess::after_arrival`]) or when a turn
//! completes ([`ArrivalProcess::after_finish`]), instead of pre-loading
//! `num_requests` events into the queue at t = 0.

use agentsim_simkit::dist::{Exponential, Sample};
use agentsim_simkit::{SimDuration, SimRng, SimTime};

/// One client submission, produced by an [`ArrivalProcess`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// When the request enters the system.
    pub at: SimTime,
    /// Stable session identity (drives routing affinity and the slot a
    /// driver stores session state in). Open-loop clients use a fresh
    /// session per arrival; closed-loop clients reuse one per user.
    pub session: u64,
    /// Global turn index, unique across the whole run (drives task
    /// selection and per-turn RNG forks, so a closed-loop user solves a
    /// *different* task each turn).
    pub turn: u64,
    /// Which delivery attempt of this logical turn this is. Client
    /// processes always issue attempt 0; drivers re-issue the same turn
    /// with `attempt + 1` when a deadline expires under a retry policy
    /// (see `agentsim_session::overload::RetryPolicy`).
    pub attempt: u32,
}

/// Declarative description of the client population. Cheap to clone;
/// drivers call [`ClientModel::build`] to obtain the stateful process.
#[derive(Debug, Clone, Default)]
pub enum ClientModel {
    /// Poisson arrivals at the configured QPS, one single-turn session
    /// per arrival, regardless of server state (the paper's §IV-C
    /// methodology, and this simulator's historical behaviour —
    /// bit-identical to the old pre-scheduled loop).
    #[default]
    OpenLoopPoisson,
    /// A fixed population of `concurrency` users. Each user submits a
    /// task, waits for it to finish, thinks for an exponentially
    /// distributed time with mean `think_time`, then submits the next
    /// task under the **same session id** — so at most `concurrency`
    /// turns are ever in flight, and per-session server state (routing
    /// affinity, prefix cache) is exercised across turns.
    ClosedLoop {
        /// Number of concurrent users (the population size).
        concurrency: u32,
        /// Mean think time between a turn finishing and the next
        /// submission. Zero means immediate re-submission.
        think_time: SimDuration,
    },
    /// Replays a recorded arrival trace: entry `i` is the gap between
    /// arrival `i-1` and arrival `i` (the first gap is measured from
    /// t = 0). One single-turn session per arrival; the trace length
    /// overrides the configured request count.
    TraceReplay {
        /// Inter-arrival gaps, in arrival order.
        gaps: Vec<SimDuration>,
    },
}

impl ClientModel {
    /// Number of session slots a driver must allocate for a run issuing
    /// up to `num_requests` turns.
    pub fn sessions(&self, num_requests: u64) -> u64 {
        match self {
            ClientModel::OpenLoopPoisson => num_requests,
            ClientModel::ClosedLoop { concurrency, .. } => (*concurrency as u64).min(num_requests),
            ClientModel::TraceReplay { gaps } => gaps.len() as u64,
        }
    }

    /// Total turns the process will issue (drivers assert they complete
    /// exactly this many).
    pub fn total_turns(&self, num_requests: u64) -> u64 {
        match self {
            ClientModel::OpenLoopPoisson | ClientModel::ClosedLoop { .. } => num_requests,
            ClientModel::TraceReplay { gaps } => gaps.len() as u64,
        }
    }

    /// Instantiates the stateful process. `rng` must be the driver's
    /// arrival stream (`root.fork(seeds::ARRIVALS)`); open-loop draws
    /// from it directly, which keeps gap sequences bit-identical to the
    /// historical pre-scheduled loop.
    pub fn build(&self, qps: f64, num_requests: u64, rng: SimRng) -> Box<dyn ArrivalProcess> {
        match self {
            ClientModel::OpenLoopPoisson => Box::new(OpenLoopPoisson {
                gaps: Exponential::with_rate(qps),
                rng,
                last: SimTime::ZERO,
                issued: 0,
                total: num_requests,
            }),
            ClientModel::ClosedLoop {
                concurrency,
                think_time,
            } => {
                let population = (*concurrency as u64).min(num_requests);
                Box::new(ClosedLoop {
                    think: (!think_time.is_zero())
                        .then(|| Exponential::with_mean(think_time.as_secs_f64())),
                    rng,
                    population,
                    gaps_drawn: vec![0; population as usize],
                    issued: 0,
                    total: num_requests,
                })
            }
            ClientModel::TraceReplay { gaps } => Box::new(TraceReplay {
                gaps: gaps.clone(),
                last: SimTime::ZERO,
                issued: 0,
            }),
        }
    }
}

/// The stateful arrival generator a driver steps its run with.
pub trait ArrivalProcess: std::fmt::Debug {
    /// Arrivals to seed the event queue with at t = 0 (one for open
    /// loop / replay; the whole population's first turns for closed
    /// loop).
    fn initial(&mut self) -> Vec<Arrival>;

    /// Called when an arrival fires: the next arrival to schedule, if
    /// any (open loop / replay chain here; closed loop is driven by
    /// completions instead).
    fn after_arrival(&mut self, now: SimTime) -> Option<Arrival>;

    /// Called when session `session`'s turn completes at `now`: the
    /// user's next submission, if any.
    fn after_finish(&mut self, session: u64, now: SimTime) -> Option<Arrival>;
}

#[derive(Debug)]
struct OpenLoopPoisson {
    gaps: Exponential,
    rng: SimRng,
    last: SimTime,
    issued: u64,
    total: u64,
}

impl OpenLoopPoisson {
    fn next(&mut self) -> Option<Arrival> {
        if self.issued >= self.total {
            return None;
        }
        let i = self.issued;
        self.issued += 1;
        self.last += SimDuration::from_secs_f64(self.gaps.sample(&mut self.rng));
        Some(Arrival {
            at: self.last,
            session: i,
            turn: i,
            attempt: 0,
        })
    }
}

impl ArrivalProcess for OpenLoopPoisson {
    fn initial(&mut self) -> Vec<Arrival> {
        self.next().into_iter().collect()
    }

    fn after_arrival(&mut self, _now: SimTime) -> Option<Arrival> {
        self.next()
    }

    fn after_finish(&mut self, _session: u64, _now: SimTime) -> Option<Arrival> {
        None
    }
}

#[derive(Debug)]
struct ClosedLoop {
    /// `None` when think time is zero (no sampling, immediate turn).
    think: Option<Exponential>,
    rng: SimRng,
    population: u64,
    /// Per-user count of think gaps drawn, so each draw comes from a
    /// fresh key of the user's private sub-stream.
    gaps_drawn: Vec<u64>,
    issued: u64,
    total: u64,
}

impl ClosedLoop {
    /// Draws user `u`'s next think gap. Each user thinks on a private
    /// sub-stream (`rng.fork(u)` does not advance the parent) keyed by
    /// their own draw count, so one user's think sequence is independent
    /// of how the others' turns interleave — the whole run stays a pure
    /// function of the seed.
    fn think_gap(&mut self, user: u64) -> SimDuration {
        let nth = self.gaps_drawn[user as usize];
        self.gaps_drawn[user as usize] += 1;
        match &self.think {
            Some(dist) => {
                let mut rng = self.rng.fork(user).fork(nth);
                SimDuration::from_secs_f64(dist.sample(&mut rng))
            }
            None => SimDuration::ZERO,
        }
    }

    fn issue(&mut self, user: u64, at: SimTime) -> Arrival {
        let turn = self.issued;
        self.issued += 1;
        Arrival {
            at,
            session: user,
            turn,
            attempt: 0,
        }
    }
}

impl ArrivalProcess for ClosedLoop {
    fn initial(&mut self) -> Vec<Arrival> {
        // Every user thinks before their first submission too, so the
        // population ramps in staggered rather than stampeding at t = 0.
        (0..self.population)
            .map(|u| {
                let gap = self.think_gap(u);
                self.issue(u, SimTime::ZERO + gap)
            })
            .collect()
    }

    fn after_arrival(&mut self, _now: SimTime) -> Option<Arrival> {
        None
    }

    fn after_finish(&mut self, session: u64, now: SimTime) -> Option<Arrival> {
        if self.issued >= self.total {
            return None;
        }
        let gap = self.think_gap(session);
        Some(self.issue(session, now + gap))
    }
}

#[derive(Debug)]
struct TraceReplay {
    gaps: Vec<SimDuration>,
    last: SimTime,
    issued: u64,
}

impl TraceReplay {
    fn next(&mut self) -> Option<Arrival> {
        let gap = *self.gaps.get(self.issued as usize)?;
        let i = self.issued;
        self.issued += 1;
        self.last += gap;
        Some(Arrival {
            at: self.last,
            session: i,
            turn: i,
            attempt: 0,
        })
    }
}

impl ArrivalProcess for TraceReplay {
    fn initial(&mut self) -> Vec<Arrival> {
        self.next().into_iter().collect()
    }

    fn after_arrival(&mut self, _now: SimTime) -> Option<Arrival> {
        self.next()
    }

    fn after_finish(&mut self, _session: u64, _now: SimTime) -> Option<Arrival> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(7).fork(crate::seeds::ARRIVALS)
    }

    #[test]
    fn open_loop_matches_pre_scheduled_gaps() {
        // The lazy chain must reproduce the historical eager loop draw
        // for draw.
        let gaps = Exponential::with_rate(4.0);
        let mut eager_rng = rng();
        let mut t = SimTime::ZERO;
        let eager: Vec<SimTime> = (0..20)
            .map(|_| {
                t += SimDuration::from_secs_f64(gaps.sample(&mut eager_rng));
                t
            })
            .collect();

        let mut p = ClientModel::OpenLoopPoisson.build(4.0, 20, rng());
        let mut lazy = p.initial();
        while let Some(a) = p.after_arrival(lazy.last().unwrap().at) {
            lazy.push(a);
        }
        assert_eq!(lazy.len(), 20);
        for (i, a) in lazy.iter().enumerate() {
            assert_eq!(a.at, eager[i], "arrival {i}");
            assert_eq!(a.session, i as u64);
            assert_eq!(a.turn, i as u64);
        }
        assert!(p.after_finish(0, t).is_none());
    }

    #[test]
    fn closed_loop_respects_population_and_turn_budget() {
        let model = ClientModel::ClosedLoop {
            concurrency: 3,
            think_time: SimDuration::from_secs(5),
        };
        assert_eq!(model.sessions(10), 3);
        assert_eq!(model.total_turns(10), 10);
        let mut p = model.build(1.0, 10, rng());
        let first = p.initial();
        assert_eq!(first.len(), 3, "one initial turn per user");
        let mut issued = first.len() as u64;
        let mut in_flight: Vec<Arrival> = first;
        // Finish turns round-robin; each finish yields at most one new
        // turn for the same session, until the budget is spent.
        while let Some(done) = in_flight.pop() {
            if let Some(next) = p.after_finish(done.session, done.at + SimDuration::from_secs(30)) {
                assert_eq!(next.session, done.session, "session id is reused");
                assert!(next.at >= done.at, "next turn is after the finish");
                issued += 1;
                in_flight.insert(0, next);
            }
        }
        assert_eq!(issued, 10, "exactly the turn budget is issued");
    }

    #[test]
    fn closed_loop_population_larger_than_budget_is_clamped() {
        let model = ClientModel::ClosedLoop {
            concurrency: 64,
            think_time: SimDuration::ZERO,
        };
        assert_eq!(model.sessions(5), 5);
        let mut p = model.build(1.0, 5, rng());
        assert_eq!(p.initial().len(), 5);
        assert!(p.after_finish(0, SimTime::ZERO).is_none());
    }

    #[test]
    fn zero_think_time_resubmits_immediately() {
        let model = ClientModel::ClosedLoop {
            concurrency: 1,
            think_time: SimDuration::ZERO,
        };
        let mut p = model.build(1.0, 3, rng());
        let first = p.initial();
        assert_eq!(first[0].at, SimTime::ZERO);
        let t = SimTime::from_secs_f64(9.0);
        let next = p.after_finish(0, t).expect("budget remains");
        assert_eq!(next.at, t, "no think gap");
        assert_eq!(next.turn, 1, "turns are globally unique");
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let model = ClientModel::ClosedLoop {
            concurrency: 4,
            think_time: SimDuration::from_secs(2),
        };
        let run = || {
            let mut p = model.build(1.0, 12, rng());
            let mut all = p.initial();
            let mut i = 0;
            while let Some(a) = {
                let done = all[i % all.len()];
                p.after_finish(done.session, done.at + SimDuration::from_secs(1))
            } {
                all.push(a);
                i += 1;
            }
            all.iter()
                .map(|a| (a.at, a.session, a.turn))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_replay_walks_the_gaps() {
        let model = ClientModel::TraceReplay {
            gaps: vec![
                SimDuration::from_secs(1),
                SimDuration::from_secs(2),
                SimDuration::from_secs(3),
            ],
        };
        assert_eq!(model.total_turns(999), 3, "trace length wins");
        let mut p = model.build(1.0, 999, rng());
        let first = p.initial();
        assert_eq!(first[0].at, SimTime::from_secs_f64(1.0));
        let second = p.after_arrival(first[0].at).unwrap();
        assert_eq!(second.at, SimTime::from_secs_f64(3.0));
        let third = p.after_arrival(second.at).unwrap();
        assert_eq!(third.at, SimTime::from_secs_f64(6.0));
        assert!(p.after_arrival(third.at).is_none());
    }
}
