//! The session state machine shared by every serving driver.
//!
//! A [`SessionRunner`] steps one agent (or chatbot) session: it asks the
//! [`AgentPolicy`] for its next op, executes tool batches, accumulates
//! the [`RequestTrace`], and tells the driver — via [`SessionCmd`] —
//! what *it* must do, because only the driver knows where LLM calls go
//! (one engine, a routed fleet, or a prefill/decode pool pair) and owns
//! the event queue.
//!
//! The protocol:
//!
//! 1. [`SessionRunner::agent`] / [`SessionRunner::chatbot`] return the
//!    runner plus its first command.
//! 2. [`SessionCmd::Llm`] — submit every [`LlmSubmit`] to an engine with
//!    the op's priority, remembering each call's `seq` (its index in the
//!    batch). When a call completes, feed [`SessionRunner::on_call_done`];
//!    once the whole batch is in, it returns the next command.
//! 3. [`SessionCmd::Tools`] — tools are already executed (latencies are
//!    simulated, not awaited); schedule a wake-up at `wake` and then call
//!    [`SessionRunner::on_tools_done`].
//! 4. [`SessionCmd::Finish`] — the turn is over; take the trace and
//!    retire (or, under a closed-loop client, re-submit) the session.
//!
//! Timing, RNG forks, and trace arithmetic here are bit-identical to the
//! four driver-private state machines this module replaced; the golden
//! `ServingReport`/`FleetReport`/`DisaggReport` fingerprints pin that.

use agentsim_agents::{
    build_agent, AgentConfig, AgentKind, AgentOp, AgentPolicy, LlmCallSpec, LlmOutput, OpResult,
    OutputKind, TaskOutcome,
};
use agentsim_kvcache::TokenBuf;
use agentsim_llm::LlmCompletion;
use agentsim_simkit::{SimDuration, SimRng, SimTime};
use agentsim_tools::{ToolCall, ToolExecutor, ToolResult};
use agentsim_workloads::{Benchmark, Task};

use crate::seeds;
use crate::trace::{LlmCallRecord, RequestTrace};

/// One LLM call the driver must submit to an engine.
#[derive(Debug)]
pub struct LlmSubmit {
    /// The full input prompt (moved, so memoized block hashes carry into
    /// the engine instead of being recomputed from a copy).
    pub prompt: TokenBuf,
    /// Number of tokens to generate.
    pub out_tokens: u32,
    /// Seed identifying the output token stream.
    pub gen_seed: u64,
}

/// A batch of LLM calls forming one agent op. Calls are identified by
/// their index (`seq`) in [`LlmOp::calls`] when reporting completion.
#[derive(Debug)]
pub struct LlmOp {
    /// The calls, in submission order.
    pub calls: Vec<LlmSubmit>,
    /// Scheduling priority: the session's LLM-call count so far, so
    /// deeper (warmer, closer-to-done) sessions can be favoured by
    /// priority-aware engine schedulers.
    pub priority: u32,
}

/// What the driver must do next for a session.
#[derive(Debug)]
pub enum SessionCmd {
    /// Submit these LLM calls; resume via [`SessionRunner::on_call_done`].
    Llm(LlmOp),
    /// Tools are running; wake the session at `wake` and call
    /// [`SessionRunner::on_tools_done`].
    Tools {
        /// When the slowest tool of the batch lands.
        wake: SimTime,
    },
    /// The session's turn is complete.
    Finish(TaskOutcome),
}

/// A completed LLM call, as reported back by the driver.
#[derive(Debug)]
pub struct CallDone {
    /// Output tokens generated.
    pub tokens: u32,
    /// The full engine completion record, when the driver has it in hand
    /// (disaggregated drivers stitch per-leg records separately and pass
    /// `None`; the trace then simply carries no per-call LLM records).
    pub completion: Option<LlmCompletion>,
}

impl CallDone {
    /// Wraps a full completion record.
    pub fn from_completion(completion: LlmCompletion) -> Self {
        CallDone {
            tokens: completion.output_tokens,
            completion: Some(completion),
        }
    }

    /// Only the output-token count is known (disaggregated legs).
    pub fn tokens_only(tokens: u32) -> Self {
        CallDone {
            tokens,
            completion: None,
        }
    }
}

/// How the runner derives randomness for tool execution.
#[derive(Debug)]
pub enum ToolRng {
    /// Fork a fresh stream off the session RNG keyed by the current
    /// simulation time (the event-driven drivers' scheme: tool draws stay
    /// independent of how many sessions interleave).
    ForkByTime,
    /// Draw from one dedicated sequential stream (the single-request
    /// driver's scheme, kept for bit-compatibility with its traces).
    Stream(SimRng),
}

/// The per-session state machine. See the [module docs](self) for the
/// driver protocol.
#[derive(Debug)]
pub struct SessionRunner {
    /// `None` for chatbot sessions (single call, no policy).
    policy: Option<Box<dyn AgentPolicy>>,
    trace: RequestTrace,
    rng: SimRng,
    tool_rng: ToolRng,
    /// Conversation carried over from the session's earlier turns,
    /// prepended to every outgoing prompt. The agent policy is unaware of
    /// it: its own context starts fresh each turn, and the shared-prefix
    /// machinery (chain-hashed KV blocks) makes the carried tokens a
    /// cache hit when the history is still resident.
    history: Option<TokenBuf>,
    /// Specs of the in-flight op (prompts already moved out), in
    /// submission order.
    pending: Vec<LlmCallSpec>,
    /// Completion slots matching `pending` by index.
    done: Vec<Option<CallDone>>,
    done_count: usize,
    /// Tool results landing at the scheduled `Tools { wake }` instant.
    scheduled_tools: Vec<ToolResult>,
    /// Planner outputs held back while an overlapped plan's tools run,
    /// delivered together with the tool results.
    held_outputs: Vec<LlmOutput>,
    /// Tools to launch when the overlapped planner call finishes.
    overlap_tools: Option<(Vec<ToolCall>, f64)>,
    op_start: SimTime,
    calls_made: u32,
}

impl SessionRunner {
    /// Starts an agent session on `task`, returning the runner and its
    /// first command.
    pub fn agent(
        kind: AgentKind,
        task: &Task,
        config: AgentConfig,
        rng: SimRng,
        tool_rng: ToolRng,
        tools: &ToolExecutor,
        now: SimTime,
    ) -> (Self, SessionCmd) {
        Self::agent_continuing(None, kind, task, config, rng, tool_rng, tools, now)
    }

    /// Starts an agent session that *continues* a conversation: `history`
    /// (the carried context of the session's earlier turns) is prepended
    /// to every prompt this turn submits, so a resident or offloaded copy
    /// of the prior turn's KV blocks turns the whole carry into a prefix
    /// hit. `None` behaves exactly like [`SessionRunner::agent`].
    #[allow(clippy::too_many_arguments)]
    pub fn agent_continuing(
        history: Option<TokenBuf>,
        kind: AgentKind,
        task: &Task,
        config: AgentConfig,
        rng: SimRng,
        tool_rng: ToolRng,
        tools: &ToolExecutor,
        now: SimTime,
    ) -> (Self, SessionCmd) {
        let mut runner = SessionRunner {
            policy: Some(build_agent(kind, task, config)),
            trace: RequestTrace::new(kind, task.benchmark, task.id, now),
            rng,
            tool_rng,
            history,
            pending: Vec::new(),
            done: Vec::new(),
            done_count: 0,
            scheduled_tools: Vec::new(),
            held_outputs: Vec::new(),
            overlap_tools: None,
            op_start: now,
            calls_made: 0,
        };
        let op = runner
            .policy
            .as_mut()
            .expect("agent session")
            .next(&OpResult::empty(), &mut runner.rng);
        let cmd = runner.handle_op(op, tools, now);
        (runner, cmd)
    }

    /// Starts a single-call chatbot session (no policy): one prompt, one
    /// answer, done.
    pub fn chatbot(
        prompt: TokenBuf,
        out_tokens: u32,
        gen_seed: u64,
        task_id: u64,
        rng: SimRng,
        now: SimTime,
    ) -> (Self, SessionCmd) {
        let mut runner = SessionRunner {
            policy: None,
            // The agent label is unused for chatbot traffic.
            trace: RequestTrace::new(AgentKind::Cot, Benchmark::ShareGpt, task_id, now),
            rng,
            tool_rng: ToolRng::ForkByTime,
            history: None,
            pending: Vec::new(),
            done: Vec::new(),
            done_count: 0,
            scheduled_tools: Vec::new(),
            held_outputs: Vec::new(),
            overlap_tools: None,
            op_start: now,
            calls_made: 0,
        };
        let spec = LlmCallSpec {
            prompt: Default::default(),
            out_tokens,
            gen_seed,
            kind: OutputKind::Answer,
            breakdown: Default::default(),
        };
        let cmd = runner.begin_llm_op_prompts(vec![(prompt, spec)], now);
        (runner, cmd)
    }

    /// Whether this is an agent session (as opposed to chatbot traffic).
    pub fn is_agent(&self) -> bool {
        self.policy.is_some()
    }

    /// The trace accumulated so far.
    pub fn trace(&self) -> &RequestTrace {
        &self.trace
    }

    /// Consumes the runner, yielding the final trace.
    pub fn into_trace(self) -> RequestTrace {
        self.trace
    }

    /// Records call `seq` of the in-flight op as complete. Returns the
    /// next command once the whole op has landed, `None` while calls are
    /// still outstanding.
    pub fn on_call_done(
        &mut self,
        seq: u32,
        done: CallDone,
        tools: &ToolExecutor,
        now: SimTime,
    ) -> Option<SessionCmd> {
        let slot = &mut self.done[seq as usize];
        debug_assert!(slot.is_none(), "call {seq} completed twice");
        *slot = Some(done);
        self.done_count += 1;
        if self.done_count < self.pending.len() {
            return None;
        }
        Some(self.advance_llm_op(tools, now))
    }

    /// Resumes the session after its scheduled tool batch landed.
    pub fn on_tools_done(&mut self, tools: &ToolExecutor, now: SimTime) -> SessionCmd {
        let results = std::mem::take(&mut self.scheduled_tools);
        self.trace.tools.extend(results.iter().cloned());
        let result = OpResult {
            llm: std::mem::take(&mut self.held_outputs),
            tools: results,
        };
        let op = self
            .policy
            .as_mut()
            .expect("agent session")
            .next(&result, &mut self.rng);
        self.handle_op(op, tools, now)
    }

    /// All calls of the current op completed: record them and advance.
    fn advance_llm_op(&mut self, tools: &ToolExecutor, now: SimTime) -> SessionCmd {
        let pending = std::mem::take(&mut self.pending);
        let done = std::mem::take(&mut self.done);
        self.done_count = 0;
        let mut outputs = Vec::with_capacity(pending.len());
        for (spec, slot) in pending.into_iter().zip(done) {
            let call = slot.expect("every pending call completed");
            outputs.push(LlmOutput {
                tokens: call.tokens,
                gen_seed: spec.gen_seed,
            });
            if let Some(completion) = call.completion {
                let mut breakdown = spec.breakdown;
                breakdown.output = completion.output_tokens;
                self.trace.llm.push(LlmCallRecord {
                    completion,
                    kind: spec.kind,
                    breakdown,
                });
            }
        }
        let op_time = now.saturating_since(self.op_start);

        // Chatbot sessions finish after their single call.
        if self.policy.is_none() {
            self.trace.llm_wall += op_time;
            self.trace.finished = now;
            return SessionCmd::Finish(self.trace.outcome);
        }

        // LLMCompiler overlapped plan: launch the planned tools with the
        // overlap credit already elapsed during planning; the planner
        // outputs are held back and delivered with the tool results.
        if let Some((calls, overlap)) = self.overlap_tools.take() {
            let results = self.exec_tools(tools, &calls, now, seeds::OVERLAP_TOOLS);
            let wall = batch_wall(&results);
            let credit = op_time.mul_f64(overlap.clamp(0.0, 1.0));
            let overlapped = wall.min(credit);
            let extra = wall.saturating_sub(credit);
            self.trace.llm_wall += op_time.saturating_sub(overlapped);
            self.trace.overlap_wall += overlapped;
            self.trace.tool_wall += extra;
            self.scheduled_tools = results;
            self.held_outputs = outputs;
            return SessionCmd::Tools { wake: now + extra };
        }

        self.trace.llm_wall += op_time;
        let result = OpResult {
            llm: outputs,
            tools: Vec::new(),
        };
        let op = self
            .policy
            .as_mut()
            .expect("agent session")
            .next(&result, &mut self.rng);
        self.handle_op(op, tools, now)
    }

    fn handle_op(&mut self, op: AgentOp, tools: &ToolExecutor, now: SimTime) -> SessionCmd {
        match op {
            AgentOp::Llm(spec) => self.begin_llm_op(vec![spec], now),
            AgentOp::LlmBatch(specs) => self.begin_llm_op(specs, now),
            AgentOp::Tools(calls) => {
                self.op_start = now;
                let results = self.exec_tools(tools, &calls, now, 0);
                let wall = batch_wall(&results);
                self.trace.tool_wall += wall;
                self.scheduled_tools = results;
                SessionCmd::Tools { wake: now + wall }
            }
            AgentOp::OverlappedPlan {
                llm,
                tools: calls,
                overlap,
            } => {
                self.overlap_tools = Some((calls, overlap));
                self.begin_llm_op(vec![llm], now)
            }
            AgentOp::Finish(outcome) => {
                self.trace.outcome = outcome;
                self.trace.finished = now;
                SessionCmd::Finish(outcome)
            }
        }
    }

    fn begin_llm_op(&mut self, specs: Vec<LlmCallSpec>, now: SimTime) -> SessionCmd {
        let prompts = specs
            .into_iter()
            .map(|mut spec| (std::mem::take(&mut spec.prompt), spec))
            .collect();
        self.begin_llm_op_prompts(prompts, now)
    }

    fn begin_llm_op_prompts(
        &mut self,
        specs: Vec<(TokenBuf, LlmCallSpec)>,
        now: SimTime,
    ) -> SessionCmd {
        self.op_start = now;
        let priority = self.calls_made;
        self.calls_made += specs.len() as u32;
        let mut calls = Vec::with_capacity(specs.len());
        let mut pending = Vec::with_capacity(specs.len());
        for (prompt, spec) in specs {
            let prompt = match &self.history {
                Some(h) => {
                    let mut full = h.clone();
                    full.push_buf(&prompt);
                    full
                }
                None => prompt,
            };
            calls.push(LlmSubmit {
                prompt,
                out_tokens: spec.out_tokens,
                gen_seed: spec.gen_seed,
            });
            pending.push(spec);
        }
        self.done = (0..pending.len()).map(|_| None).collect();
        self.done_count = 0;
        self.pending = pending;
        SessionCmd::Llm(LlmOp { calls, priority })
    }

    /// Executes a tool batch under the configured RNG scheme. `salt` is
    /// XOR'd into the time key so overlapped-plan tools draw independently
    /// of a plain batch at the same instant.
    fn exec_tools(
        &mut self,
        tools: &ToolExecutor,
        calls: &[ToolCall],
        now: SimTime,
        salt: u64,
    ) -> Vec<ToolResult> {
        match &mut self.tool_rng {
            ToolRng::ForkByTime => {
                let mut rng = self.rng.fork(now.as_micros() ^ salt);
                tools.execute_batch(calls, &mut rng)
            }
            ToolRng::Stream(rng) => tools.execute_batch(calls, rng),
        }
    }
}

/// Wall time of a concurrent tool batch: its slowest call (latencies
/// within a batch are correlated — see [`ToolExecutor::execute_batch`]).
fn batch_wall(results: &[ToolResult]) -> SimDuration {
    results
        .iter()
        .map(|r| r.latency)
        .max()
        .unwrap_or(SimDuration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_workloads::TaskGenerator;

    fn start_react(seed: u64) -> (SessionRunner, SessionCmd, ToolExecutor) {
        let task = TaskGenerator::new(Benchmark::HotpotQa, seed).task(0);
        let tools = ToolExecutor::new();
        let rng = SimRng::seed_from(seed).fork(1);
        let (runner, cmd) = SessionRunner::agent(
            AgentKind::React,
            &task,
            AgentConfig::default(),
            rng,
            ToolRng::ForkByTime,
            &tools,
            SimTime::ZERO,
        );
        (runner, cmd, tools)
    }

    /// Drives a session synchronously with fabricated completions.
    fn drive(mut runner: SessionRunner, mut cmd: SessionCmd, tools: &ToolExecutor) -> RequestTrace {
        let mut now = SimTime::ZERO;
        loop {
            match cmd {
                SessionCmd::Llm(op) => {
                    now += SimDuration::from_millis(250);
                    let mut next = None;
                    for (seq, call) in op.calls.iter().enumerate() {
                        let done = CallDone::tokens_only(call.out_tokens);
                        if let Some(c) = runner.on_call_done(seq as u32, done, tools, now) {
                            next = Some(c);
                        }
                    }
                    cmd = next.expect("full batch completed");
                }
                SessionCmd::Tools { wake } => {
                    now = wake;
                    cmd = runner.on_tools_done(tools, now);
                }
                SessionCmd::Finish(_) => return runner.into_trace(),
            }
        }
    }

    #[test]
    fn react_session_runs_to_finish() {
        let (runner, cmd, tools) = start_react(3);
        assert!(
            matches!(cmd, SessionCmd::Llm(_)),
            "agents open with an LLM call"
        );
        let trace = drive(runner, cmd, &tools);
        assert!(trace.tool_calls() >= 1);
        assert!(trace.finished > trace.started);
    }

    #[test]
    fn chatbot_session_is_single_call() {
        let tools = ToolExecutor::new();
        let (mut runner, cmd) = SessionRunner::chatbot(
            TokenBuf::from_segment(7, 64),
            32,
            9,
            0,
            SimRng::seed_from(1),
            SimTime::ZERO,
        );
        assert!(!runner.is_agent());
        let SessionCmd::Llm(op) = cmd else {
            panic!("chatbot opens with its single LLM call")
        };
        assert_eq!(op.calls.len(), 1);
        assert_eq!(op.priority, 0);
        let end = SimTime::from_secs_f64(2.0);
        let cmd = runner
            .on_call_done(0, CallDone::tokens_only(32), &tools, end)
            .expect("single call finishes the op");
        assert!(matches!(cmd, SessionCmd::Finish(_)));
        assert_eq!(runner.trace().e2e(), SimDuration::from_secs(2));
    }

    #[test]
    fn carried_history_prefixes_every_prompt() {
        let task = TaskGenerator::new(Benchmark::HotpotQa, 3).task(0);
        let tools = ToolExecutor::new();
        let history = TokenBuf::from_segment(0xC0FFEE, 96);
        let fresh = SessionRunner::agent(
            AgentKind::React,
            &task,
            AgentConfig::default(),
            SimRng::seed_from(3).fork(1),
            ToolRng::ForkByTime,
            &tools,
            SimTime::ZERO,
        );
        let cont = SessionRunner::agent_continuing(
            Some(history.clone()),
            AgentKind::React,
            &task,
            AgentConfig::default(),
            SimRng::seed_from(3).fork(1),
            ToolRng::ForkByTime,
            &tools,
            SimTime::ZERO,
        );
        let (SessionCmd::Llm(fresh_op), SessionCmd::Llm(cont_op)) = (fresh.1, cont.1) else {
            panic!("agents open with an LLM call")
        };
        let fresh_prompt = &fresh_op.calls[0].prompt;
        let cont_prompt = &cont_op.calls[0].prompt;
        assert_eq!(cont_prompt.len(), history.len() + fresh_prompt.len());
        assert_eq!(&cont_prompt.as_slice()[..history.len()], history.as_slice());
        assert_eq!(
            &cont_prompt.as_slice()[history.len()..],
            fresh_prompt.as_slice()
        );
    }

    #[test]
    fn batch_resumes_only_after_all_calls() {
        let task = TaskGenerator::new(Benchmark::HotpotQa, 5).task(0);
        let tools = ToolExecutor::new();
        let (mut runner, cmd) = SessionRunner::agent(
            AgentKind::Lats,
            &task,
            AgentConfig::default(),
            SimRng::seed_from(5).fork(1),
            ToolRng::ForkByTime,
            &tools,
            SimTime::ZERO,
        );
        let SessionCmd::Llm(op) = cmd else {
            panic!("LATS opens with LLM work")
        };
        if op.calls.len() > 1 {
            let t = SimTime::from_secs_f64(1.0);
            let first = runner.on_call_done(0, CallDone::tokens_only(8), &tools, t);
            assert!(first.is_none(), "op must wait for the full batch");
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (ra, ca, tools) = start_react(11);
        let (rb, cb, _) = start_react(11);
        let a = drive(ra, ca, &tools);
        let b = drive(rb, cb, &tools);
        assert_eq!(a.e2e(), b.e2e());
        assert_eq!(a.tool_calls(), b.tool_calls());
        assert_eq!(a.outcome.solved, b.outcome.solved);
    }

    #[test]
    fn overlapped_plan_delivers_planner_outputs_with_tools() {
        // LLMCompiler's AwaitPlanAndTools phase reads `last.llm`; the
        // runner must hold planner outputs through the overlap window
        // (the driver-private state machines silently dropped them).
        let task = TaskGenerator::new(Benchmark::HotpotQa, 2).task(0);
        let tools = ToolExecutor::new();
        let (runner, cmd) = SessionRunner::agent(
            AgentKind::LlmCompiler,
            &task,
            AgentConfig::default(),
            SimRng::seed_from(2).fork(1),
            ToolRng::ForkByTime,
            &tools,
            SimTime::ZERO,
        );
        let trace = drive(runner, cmd, &tools);
        assert!(trace.overlap_wall > SimDuration::ZERO || trace.tool_wall > SimDuration::ZERO);
        assert_eq!(
            trace.llm_wall + trace.tool_wall + trace.overlap_wall,
            trace.e2e(),
            "three-way wall partition must telescope to e2e"
        );
    }
}
