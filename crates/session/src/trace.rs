//! Per-request execution traces.

use std::fmt;

use agentsim_agents::{AgentKind, ContextBreakdown, OutputKind, TaskOutcome};
use agentsim_llm::LlmCompletion;
use agentsim_simkit::{SimDuration, SimTime};
use agentsim_tools::ToolResult;
use agentsim_workloads::Benchmark;

/// One LLM call within a request, with its engine record and the context
/// composition at call time.
#[derive(Debug, Clone, PartialEq)]
pub struct LlmCallRecord {
    /// Engine-side completion record.
    pub completion: LlmCompletion,
    /// The call's role in the workflow.
    pub kind: OutputKind,
    /// Input-token composition, with `output` filled in.
    pub breakdown: ContextBreakdown,
}

/// Everything that happened while serving one agent request.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The agent framework.
    pub agent: AgentKind,
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Task identity within the generator stream.
    pub task_id: u64,
    /// When the request entered the system.
    pub started: SimTime,
    /// When the agent finished.
    pub finished: SimTime,
    /// All LLM calls, in completion order.
    pub llm: Vec<LlmCallRecord>,
    /// All tool results, in completion order.
    pub tools: Vec<ToolResult>,
    /// Wall time attributable to waiting on LLM inference.
    pub llm_wall: SimDuration,
    /// Wall time attributable to waiting on tools alone.
    pub tool_wall: SimDuration,
    /// Wall time where LLM inference and tool execution overlapped.
    pub overlap_wall: SimDuration,
    /// Final outcome.
    pub outcome: TaskOutcome,
}

impl RequestTrace {
    /// Creates an empty trace starting at `started`.
    pub fn new(agent: AgentKind, benchmark: Benchmark, task_id: u64, started: SimTime) -> Self {
        RequestTrace {
            agent,
            benchmark,
            task_id,
            started,
            finished: started,
            llm: Vec::new(),
            tools: Vec::new(),
            llm_wall: SimDuration::ZERO,
            tool_wall: SimDuration::ZERO,
            overlap_wall: SimDuration::ZERO,
            outcome: TaskOutcome {
                solved: false,
                iterations: 0,
            },
        }
    }

    /// Number of LLM invocations (the paper's Fig. 4 metric).
    pub fn llm_calls(&self) -> usize {
        self.llm.len()
    }

    /// Number of tool invocations.
    pub fn tool_calls(&self) -> usize {
        self.tools.len()
    }

    /// End-to-end latency.
    pub fn e2e(&self) -> SimDuration {
        self.finished.saturating_since(self.started)
    }

    /// Total output tokens across LLM calls.
    pub fn output_tokens(&self) -> u64 {
        self.llm
            .iter()
            .map(|c| c.completion.output_tokens as u64)
            .sum()
    }

    /// Total input (prompt) tokens across LLM calls.
    pub fn input_tokens(&self) -> u64 {
        self.llm
            .iter()
            .map(|c| c.completion.prompt_tokens as u64)
            .sum()
    }

    /// Total prompt tokens served from the prefix cache.
    pub fn cached_tokens(&self) -> u64 {
        self.llm
            .iter()
            .map(|c| c.completion.cached_tokens as u64)
            .sum()
    }

    /// Prefix-cache hit fraction over all prompt tokens.
    pub fn cache_hit_fraction(&self) -> f64 {
        let input = self.input_tokens();
        if input == 0 {
            0.0
        } else {
            self.cached_tokens() as f64 / input as f64
        }
    }

    /// Sum of per-call prefill wall time.
    pub fn prefill_time(&self) -> SimDuration {
        self.llm.iter().map(|c| c.completion.prefill_time).sum()
    }

    /// Sum of per-call decode wall time.
    pub fn decode_time(&self) -> SimDuration {
        self.llm.iter().map(|c| c.completion.decode_time).sum()
    }

    /// Total FLOPs attributed to the request.
    pub fn flops(&self) -> f64 {
        self.llm.iter().map(|c| c.completion.flops).sum()
    }

    /// Average context composition across LLM calls (Fig. 8).
    pub fn mean_breakdown(&self) -> ContextBreakdown {
        if self.llm.is_empty() {
            return ContextBreakdown::default();
        }
        let n = self.llm.len() as u32;
        let mut sum = ContextBreakdown::default();
        for c in &self.llm {
            sum.instruction += c.breakdown.instruction;
            sum.fewshot += c.breakdown.fewshot;
            sum.user += c.breakdown.user;
            sum.llm_history += c.breakdown.llm_history;
            sum.tool_history += c.breakdown.tool_history;
            sum.output += c.breakdown.output;
        }
        ContextBreakdown {
            instruction: sum.instruction / n,
            fewshot: sum.fewshot / n,
            user: sum.user / n,
            llm_history: sum.llm_history / n,
            tool_history: sum.tool_history / n,
            output: sum.output / n,
        }
    }
}

impl fmt::Display for RequestTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}#{}: {} LLM + {} tool calls in {} ({}), llm {} tool {} overlap {}",
            self.agent,
            self.benchmark,
            self.task_id,
            self.llm_calls(),
            self.tool_calls(),
            self.e2e(),
            if self.outcome.solved {
                "solved"
            } else {
                "failed"
            },
            self.llm_wall,
            self.tool_wall,
            self.overlap_wall,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim_llm::RequestId;

    fn record(prompt: u32, cached: u32, out: u32) -> LlmCallRecord {
        LlmCallRecord {
            completion: LlmCompletion {
                id: RequestId(0),
                arrived: SimTime::ZERO,
                started: SimTime::ZERO,
                finished: SimTime::from_secs_f64(1.0),
                prompt_tokens: prompt,
                cached_tokens: cached,
                output_tokens: out,
                prefill_time: SimDuration::from_millis(100),
                decode_time: SimDuration::from_millis(900),
                flops: 1e12,
                preemptions: 0,
            },
            kind: OutputKind::Action,
            breakdown: ContextBreakdown {
                instruction: 100,
                fewshot: 200,
                user: 30,
                llm_history: 50,
                tool_history: 80,
                output: out,
            },
        }
    }

    #[test]
    fn aggregates_sum_over_calls() {
        let mut t = RequestTrace::new(AgentKind::React, Benchmark::HotpotQa, 0, SimTime::ZERO);
        t.llm.push(record(1000, 400, 50));
        t.llm.push(record(1200, 1100, 60));
        t.finished = SimTime::from_secs_f64(10.0);
        assert_eq!(t.llm_calls(), 2);
        assert_eq!(t.input_tokens(), 2200);
        assert_eq!(t.cached_tokens(), 1500);
        assert_eq!(t.output_tokens(), 110);
        assert!((t.cache_hit_fraction() - 1500.0 / 2200.0).abs() < 1e-12);
        assert_eq!(t.e2e(), SimDuration::from_secs(10));
        assert_eq!(t.prefill_time(), SimDuration::from_millis(200));
        assert_eq!(t.decode_time(), SimDuration::from_millis(1800));
        assert_eq!(t.flops(), 2e12);
    }

    #[test]
    fn mean_breakdown_averages() {
        let mut t = RequestTrace::new(AgentKind::React, Benchmark::HotpotQa, 0, SimTime::ZERO);
        t.llm.push(record(1000, 0, 50));
        t.llm.push(record(1000, 0, 70));
        let b = t.mean_breakdown();
        assert_eq!(b.instruction, 100);
        assert_eq!(b.output, 60);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = RequestTrace::new(AgentKind::Cot, Benchmark::Math, 1, SimTime::ZERO);
        assert_eq!(t.cache_hit_fraction(), 0.0);
        assert_eq!(t.mean_breakdown(), ContextBreakdown::default());
        assert_eq!(t.e2e(), SimDuration::ZERO);
    }
}
