//! Cascade routing policy: which model tier a turn lands on, and when a
//! failed turn escalates to a more capable (and more expensive) pool.
//!
//! The policy itself is pure configuration — the fleet driver owns the
//! mechanics (re-routing, conversation carry, KV hints). Keeping it in
//! the session crate lets both the serving fleet and experiment code
//! share one vocabulary for cascade behaviour.
//!
//! Two knobs decide the *initial* tier of a turn:
//!
//! * `aptitude_margin` — a pre-screen on the cheap tier's best-case
//!   capability. The driver compares the task's latent aptitude (from
//!   the cognition model) against the cheap agent's deterministic
//!   full-evidence capability ceiling; tasks the cheap tier cannot
//!   solve even in the best case (plus the margin) skip straight to the
//!   premium tier instead of burning a doomed attempt.
//! * `escalate_retries` — deadline-expired retries of a turn re-arrive
//!   on a higher tier (attempt `k` lands on tier `min(k, top)`), on the
//!   theory that a blown deadline on the cheap pool is evidence the
//!   turn needs more capability or less queueing.
//!
//! One knob decides *post-hoc* escalation:
//!
//! * `escalate_on_failure` — a turn that finishes unsolved (and not
//!   expired) is re-run on the next tier up, carrying its conversation
//!   context, until `max_escalations` is exhausted or the top tier has
//!   had its try.

/// Policy for tier selection and failure-driven escalation across a
/// heterogeneous fleet's replica pools.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadePolicy {
    /// Re-run unsolved (non-expired) turns on the next tier up.
    pub escalate_on_failure: bool,
    /// If set, send turns whose latent aptitude exceeds the cheap
    /// tier's best-case capability minus this margin straight to the
    /// top tier. `None` disables the pre-screen.
    pub aptitude_margin: Option<f64>,
    /// Maximum failure-driven escalations per turn.
    pub max_escalations: u32,
    /// Land deadline-expired retries on progressively higher tiers.
    pub escalate_retries: bool,
}

impl CascadePolicy {
    /// No cascade behaviour at all: every turn lands on tier 0 and
    /// stays there. With a single pool this is bit-identical to the
    /// historical homogeneous fleet.
    pub fn none() -> Self {
        CascadePolicy {
            escalate_on_failure: false,
            aptitude_margin: None,
            max_escalations: 0,
            escalate_retries: false,
        }
    }

    /// The standard cascade: pre-screen hopeless tasks to the top tier
    /// with a 5% margin, escalate failures without limit, and bump
    /// deadline retries up a tier.
    pub fn standard() -> Self {
        CascadePolicy {
            escalate_on_failure: true,
            aptitude_margin: Some(0.05),
            max_escalations: u32::MAX,
            escalate_retries: true,
        }
    }

    /// True when the policy can never change a turn's tier.
    pub fn is_none(&self) -> bool {
        !self.escalate_on_failure && self.aptitude_margin.is_none() && !self.escalate_retries
    }
}

impl Default for CascadePolicy {
    fn default() -> Self {
        CascadePolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let p = CascadePolicy::none();
        assert!(p.is_none());
        assert!(!p.escalate_on_failure);
        assert_eq!(p.aptitude_margin, None);
        assert_eq!(p.max_escalations, 0);
        assert_eq!(p, CascadePolicy::default());
    }

    #[test]
    fn standard_is_active() {
        let p = CascadePolicy::standard();
        assert!(!p.is_none());
        assert!(p.escalate_on_failure);
        assert!(p.escalate_retries);
        assert!(p.aptitude_margin.unwrap() > 0.0);
        assert_eq!(p.max_escalations, u32::MAX);
    }
}
