//! Shared experiment helpers: which agents run on which benchmark, batch
//! runners, and common derived statistics.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::EngineConfig;
use agentsim_serving::{SingleOutcome, SingleRequest};
use agentsim_workloads::Benchmark;

use crate::figure::Scale;

/// The agents the paper evaluates on `benchmark` (Table II pairing).
pub fn agents_for(benchmark: Benchmark) -> Vec<AgentKind> {
    AgentKind::ALL
        .into_iter()
        .filter(|k| k.supports(benchmark))
        .collect()
}

/// Runs `scale.samples` single requests of `agent` on `benchmark` with
/// the default 8B stack.
pub fn single_batch(agent: AgentKind, benchmark: Benchmark, scale: &Scale) -> Vec<SingleOutcome> {
    single_batch_with(
        agent,
        benchmark,
        scale,
        EngineConfig::a100_llama8b(),
        AgentConfig::default_8b(),
    )
}

/// Runs a batch with explicit engine and agent configurations.
pub fn single_batch_with(
    agent: AgentKind,
    benchmark: Benchmark,
    scale: &Scale,
    engine: EngineConfig,
    config: AgentConfig,
) -> Vec<SingleOutcome> {
    SingleRequest::new(agent, benchmark)
        .seed(scale.seed)
        .engine_config(engine)
        .agent_config(config)
        .run_batch(scale.samples)
}

/// Mean of a per-outcome statistic.
pub fn mean_of<F: Fn(&SingleOutcome) -> f64>(outcomes: &[SingleOutcome], f: F) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().map(f).sum::<f64>() / outcomes.len() as f64
}

/// Fraction of outcomes whose task was solved.
pub fn accuracy_of(outcomes: &[SingleOutcome]) -> f64 {
    mean_of(outcomes, |o| o.trace.outcome.solved as u64 as f64)
}

/// Mean end-to-end latency in seconds.
pub fn mean_latency_s(outcomes: &[SingleOutcome]) -> f64 {
    mean_of(outcomes, |o| o.trace.e2e().as_secs_f64())
}

/// 95th-percentile end-to-end latency in seconds (`NaN` for an empty
/// batch — a percentile of nothing is not a number, and figure tables
/// render it as such rather than a fabricated 0).
pub fn p95_latency_s(outcomes: &[SingleOutcome]) -> f64 {
    let mut samples: agentsim_metrics::Samples = outcomes
        .iter()
        .map(|o| o.trace.e2e().as_secs_f64())
        .collect();
    samples.try_p95().unwrap_or(f64::NAN)
}

/// Runs `scale.samples` single-turn ShareGPT queries, one at a time on a
/// fresh replica each, returning `(mean latency s, mean energy Wh)` —
/// the paper's conventional-LLM baseline for Table III.
pub fn sharegpt_single(scale: &Scale, engine_config: &EngineConfig) -> (f64, f64) {
    use agentsim_llm::Engine;
    use agentsim_simkit::SimTime;
    use agentsim_workloads::ShareGptGenerator;

    let generator = ShareGptGenerator::new(scale.seed);
    let mut latency_sum = 0.0;
    let mut energy_sum = 0.0;
    for query in generator.queries(scale.samples) {
        let mut engine = Engine::new(engine_config.clone());
        let mut now = SimTime::ZERO;
        engine.submit(now, query.prompt, query.output_tokens, query.gen_seed);
        while let Some(end) = engine.start_step_if_idle(now) {
            now = end;
            let _ = engine.complete_step(now);
        }
        latency_sum += now.as_secs_f64();
        energy_sum += engine.metrics().energy_within(now).watt_hours();
    }
    let n = scale.samples as f64;
    (latency_sum / n, energy_sum / n)
}

/// Formats a float with three significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a ratio as `12.3x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_lists_match_table2() {
        assert_eq!(agents_for(Benchmark::HotpotQa).len(), 5);
        assert_eq!(agents_for(Benchmark::WebShop).len(), 4); // no CoT
        assert_eq!(agents_for(Benchmark::Math).len(), 4); // no LLMCompiler
        assert_eq!(agents_for(Benchmark::HumanEval).len(), 4);
        assert!(agents_for(Benchmark::ShareGpt).is_empty());
    }

    #[test]
    fn batch_and_stats_helpers() {
        let scale = Scale {
            samples: 4,
            serving_requests: 1,
            seed: 1,
        };
        let outcomes = single_batch(AgentKind::Cot, Benchmark::HotpotQa, &scale);
        assert_eq!(outcomes.len(), 4);
        let acc = accuracy_of(&outcomes);
        assert!((0.0..=1.0).contains(&acc));
        assert!(mean_latency_s(&outcomes) > 0.0);
        assert!(p95_latency_s(&outcomes) >= mean_latency_s(&outcomes) * 0.5);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(ratio(12.34), "12.3x");
    }
}
