//! # agentsim — experiment registry
//!
//! Reproduces every table and figure of *"The Cost of Dynamic Reasoning:
//! Demystifying AI Agents and Test-Time Scaling from an AI Infrastructure
//! Perspective"* (HPCA 2026) on the simulated serving stack built by the
//! sibling crates.
//!
//! Each experiment is a pure function of a [`Scale`] (sample counts) and
//! returns a [`FigureResult`]: one or more text tables, prose notes, and
//! machine-checked *shape checks* — the qualitative claims the paper
//! makes that the reproduction must preserve (who wins, by roughly what
//! factor, where crossovers fall).
//!
//! # Example
//!
//! ```no_run
//! use agentsim::{experiments, Scale};
//!
//! let result = experiments::fig04::run(&Scale::quick());
//! println!("{result}");
//! assert!(result.all_checks_pass());
//! ```
//!
//! The `agentsim-bench` crate's `figures` binary runs the whole registry
//! at paper scale and writes the outputs under `results/`.

pub mod experiments;
pub mod figure;
pub mod presets;

pub use experiments::{all_experiments, experiment_by_id, Experiment};
pub use figure::{Check, FigureResult, Scale};

// Re-export the pieces examples and downstream users need most.
pub use agentsim_agents::{AgentConfig, AgentKind};
pub use agentsim_llm::EngineConfig;
pub use agentsim_serving::{
    qps_sweep, ServingConfig, ServingSim, ServingWorkload, SingleOutcome, SingleRequest,
};
pub use agentsim_workloads::Benchmark;

/// Convenience prelude for examples and quick scripts.
pub mod prelude {
    pub use crate::experiments;
    pub use crate::figure::{FigureResult, Scale};
    pub use agentsim_agents::{AgentConfig, AgentKind};
    pub use agentsim_llm::EngineConfig;
    pub use agentsim_metrics::{Histogram, Samples, Summary, Table};
    pub use agentsim_serving::{
        peak_throughput, qps_sweep, ClientModel, FleetConfig, FleetSim, ReplicaPool, Routing,
        ServingConfig, ServingSim, ServingWorkload, SingleRequest,
    };
    pub use agentsim_simkit::{SimDuration, SimTime};
    pub use agentsim_workloads::Benchmark;
}
