//! Fig. 21: accuracy-latency trade-offs under sequential (reflection
//! depth) and parallel (expansion width) test-time scaling on HotpotQA.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{accuracy_of, mean_latency_s, single_batch_with};

fn sweep(
    kind: AgentKind,
    configs: &[(String, AgentConfig)],
    scale: &Scale,
) -> Vec<(String, f64, f64)> {
    configs
        .iter()
        .map(|(label, config)| {
            let outcomes = single_batch_with(
                kind,
                Benchmark::HotpotQa,
                scale,
                EngineConfig::a100_llama8b(),
                *config,
            );
            (
                label.clone(),
                accuracy_of(&outcomes),
                mean_latency_s(&outcomes),
            )
        })
        .collect()
}

fn table_of(points: &[(String, f64, f64)]) -> Table {
    let mut t = Table::with_columns(&["Scale level", "Accuracy", "Latency s"]);
    for (label, acc, lat) in points {
        t.row(vec![
            label.clone(),
            format!("{acc:.2}"),
            format!("{lat:.1}"),
        ]);
    }
    t
}

/// Runs all three panels.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig21",
        "Sequential vs parallel test-time scaling on HotpotQA (Fig. 21)",
    );
    let base = AgentConfig::default_8b();

    // (a) Reflexion: reflection depth (max trials).
    let reflexion_cfgs: Vec<(String, AgentConfig)> = [1u32, 2, 3, 4, 6]
        .iter()
        .map(|&t| (format!("trials={t}"), base.with_max_trials(t)))
        .collect();
    let reflexion = sweep(AgentKind::Reflexion, &reflexion_cfgs, scale);
    result.table("(a) Reflexion — sequential scaling", table_of(&reflexion));

    // (b) LATS: search depth (MCTS iteration budget).
    let lats_depth_cfgs: Vec<(String, AgentConfig)> = [2u32, 4, 8, 12]
        .iter()
        .map(|&i| (format!("iterations={i}"), base.with_lats_iterations(i)))
        .collect();
    let lats_depth = sweep(AgentKind::Lats, &lats_depth_cfgs, scale);
    result.table(
        "(b) LATS — sequential scaling (search budget)",
        table_of(&lats_depth),
    );

    // (c) LATS: expansion width (children per node). The search budget is
    // raised so narrow trees pay for their failed attempts — the regime in
    // which the paper observes parallel width *reducing* latency.
    let lats_width_cfgs: Vec<(String, AgentConfig)> = [1u32, 2, 4, 8, 16]
        .iter()
        .map(|&c| {
            (
                format!("children={c}"),
                base.with_lats_children(c).with_lats_iterations(12),
            )
        })
        .collect();
    let lats_width = sweep(AgentKind::Lats, &lats_width_cfgs, scale);
    result.table(
        "(c) LATS — parallel scaling (expansion width)",
        table_of(&lats_width),
    );

    // Checks.
    let first = &reflexion[0];
    let last = &reflexion[reflexion.len() - 1];
    let mid = &reflexion[2];
    result.check(
        "sequential-scaling-helps-at-growing-cost",
        last.1 >= first.1 && last.2 > 1.5 * first.2,
        format!(
            "Reflexion: acc {:.2}->{:.2}, latency {:.0}s->{:.0}s across depth",
            first.1, last.1, first.2, last.2
        ),
    );
    let early_gain_per_s = (mid.1 - first.1) / (mid.2 - first.2).max(1e-9);
    let late_gain_per_s = (last.1 - mid.1) / (last.2 - mid.2).max(1e-9);
    result.check(
        "sequential-marginal-gain-collapses",
        late_gain_per_s < early_gain_per_s + 1e-9,
        format!(
            "accuracy per extra second: {early_gain_per_s:.4} early vs {late_gain_per_s:.4} \
             late (paper: 31x more latency for the same marginal gain)"
        ),
    );
    let narrow = &lats_width[0];
    let wide = &lats_width[3]; // children=8
    result.check(
        "parallel-scaling-is-latency-free-accuracy",
        wide.1 > narrow.1 + 0.05 && wide.2 < narrow.2 * 1.10,
        format!(
            "LATS width 1 -> 8: accuracy {:.2} -> {:.2} while latency stays \
             {:.0}s -> {:.0}s (paper: +14.4pp and -196.3s; our width-cost model \
             keeps latency flat-to-slightly-down rather than strongly down — \
             see EXPERIMENTS.md)",
            narrow.1, wide.1, narrow.2, wide.2
        ),
    );
    let deep_seq = &reflexion[reflexion.len() - 1];
    result.check(
        "parallel-beats-sequential-at-equal-accuracy",
        wide.1 > deep_seq.1 && wide.2 < deep_seq.2,
        format!(
            "LATS width 8 ({:.2} acc @ {:.0}s) dominates Reflexion depth 6 \
             ({:.2} acc @ {:.0}s): exploring in parallel converges faster than \
             reflecting sequentially",
            wide.1, wide.2, deep_seq.1, deep_seq.2
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 25,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
