//! Extension: what-if the agent fleet ran on H100s?
//!
//! The paper's sustainability argument is anchored on A100 numbers; this
//! extension re-runs the Table III energy rows on H100-80GB hardware
//! (≈3x the FLOPs, ≈2.2x the bandwidth, 1.75x the TDP) to ask whether a
//! hardware generation absorbs the agentic cost explosion. It does not:
//! per-query energy improves by roughly the perf/W ratio (~1.2-1.8x),
//! nowhere near the 60-140x agentic multiplier.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{mean_latency_s, mean_of, sharegpt_single, single_batch_with};

/// Runs the hardware what-if.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_hardware",
        "Extension: A100 vs H100 for agent serving (8B model)",
    );
    let mut table = Table::with_columns(&["GPU", "Workload", "Latency s", "Wh/query"]);

    let mut cells = Vec::new();
    for (gpu, engine) in [
        ("A100-40GB", EngineConfig::a100_llama8b()),
        ("H100-80GB", EngineConfig::h100_llama8b()),
    ] {
        let (chat_lat, chat_wh) = sharegpt_single(scale, &engine);
        table.row(vec![
            gpu.to_string(),
            "ShareGPT".to_string(),
            format!("{chat_lat:.1}"),
            format!("{chat_wh:.2}"),
        ]);
        let reflexion = single_batch_with(
            AgentKind::Reflexion,
            Benchmark::HotpotQa,
            scale,
            engine.clone(),
            AgentConfig::default_8b()
                .with_max_trials(8)
                .with_max_iterations(15),
        );
        let agent_lat = mean_latency_s(&reflexion);
        let agent_wh = mean_of(&reflexion, |o| o.energy_wh);
        table.row(vec![
            gpu.to_string(),
            "Reflexion".to_string(),
            format!("{agent_lat:.1}"),
            format!("{agent_wh:.2}"),
        ]);
        cells.push((gpu, chat_wh, agent_wh, agent_lat));
    }
    result.table("Per-query cost across GPU generations", table);

    let a100 = cells
        .iter()
        .find(|(g, ..)| *g == "A100-40GB")
        .expect("a100 row");
    let h100 = cells
        .iter()
        .find(|(g, ..)| *g == "H100-80GB")
        .expect("h100 row");
    result.check(
        "h100-speeds-up-agents",
        h100.3 < a100.3,
        format!(
            "Reflexion latency: H100 {:.1}s vs A100 {:.1}s",
            h100.3, a100.3
        ),
    );
    let energy_gain = a100.2 / h100.2;
    let agent_multiplier = a100.2 / a100.1;
    result.check(
        "hardware-does-not-absorb-agentic-costs",
        energy_gain < agent_multiplier / 2.0,
        format!(
            "H100 cuts agent energy by {energy_gain:.1}x while the agentic workflow \
             multiplies it by {agent_multiplier:.0}x — a hardware generation cannot \
             pay for dynamic reasoning"
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 8,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
