//! Fig. 15: p95 latency vs QPS with and without prefix caching — the
//! serving-throughput value of caching.

use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_serving::{peak_throughput, qps_sweep, ServingWorkload};
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};

/// Sweeps load ± prefix caching for chatbot and agent traffic.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig15",
        "Serving tail latency vs QPS, with and without prefix caching (Fig. 15)",
    );

    let chatbot_points = [1.0, 2.0, 4.0, 6.0, 8.0];
    let agent_points = [0.25, 0.5, 1.0, 2.0, 3.0, 4.0];
    let mut gains = Vec::new();

    for (name, workload, points) in [
        ("ShareGPT", ServingWorkload::Chatbot, &chatbot_points[..]),
        (
            "ReAct/HotpotQA",
            ServingWorkload::Agent {
                kind: agentsim_agents::AgentKind::React,
                benchmark: Benchmark::HotpotQa,
                config: agentsim_agents::AgentConfig::default_8b(),
            },
            &agent_points[..],
        ),
    ] {
        let mut table =
            Table::with_columns(&["QPS", "p95 s (on)", "p95 s (off)", "tput on", "tput off"]);
        let on = qps_sweep(
            &EngineConfig::a100_llama8b(),
            &workload,
            points,
            scale.serving_requests,
            scale.seed,
        );
        let off = qps_sweep(
            &EngineConfig::a100_llama8b().with_prefix_caching(false),
            &workload,
            points,
            scale.serving_requests,
            scale.seed,
        );
        for (a, b) in on.iter().zip(&off) {
            table.row(vec![
                format!("{:.2}", a.qps),
                format!("{:.1}", a.report.p95_s),
                format!("{:.1}", b.report.p95_s),
                format!("{:.2}", a.report.throughput()),
                format!("{:.2}", b.report.throughput()),
            ]);
        }
        result.table(&format!("{name}: prefix caching on vs off"), table);
        let peak_on = peak_throughput(&on);
        let peak_off = peak_throughput(&off).max(1e-9);
        gains.push((name, peak_on / peak_off, peak_on, peak_off));
    }

    let chatbot_gain = gains[0].1;
    let agent_gain = gains[1].1;
    result.note(format!(
        "Peak-throughput gain from prefix caching: ShareGPT {chatbot_gain:.2}x \
         (paper: 1.03x), ReAct/HotpotQA {agent_gain:.2}x (paper: 5.62x)."
    ));
    result.check(
        "caching-helps-agents-far-more",
        agent_gain > 1.5 * chatbot_gain,
        format!("agent gain {agent_gain:.2}x vs chatbot gain {chatbot_gain:.2}x"),
    );
    result.check(
        "chatbot-barely-benefits",
        chatbot_gain < 1.5,
        format!("chatbot gain {chatbot_gain:.2}x (single-call requests share little)"),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 40,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
