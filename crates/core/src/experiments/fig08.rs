//! Fig. 8: breakdown of input and output tokens per LLM inference.

use agentsim_agents::AgentKind;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{agents_for, mean_of, single_batch};

/// Measures the mean context composition per LLM call.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig08",
        "Breakdown of input and output tokens in LLM inference (Fig. 8)",
    );
    let mut table = Table::with_columns(&[
        "Benchmark",
        "Agent",
        "Instruction",
        "Few-shot",
        "User",
        "LLM hist",
        "Tool hist",
        "Output",
    ]);

    let mut cot_output = 0.0f64;
    let mut agent_output_sum = 0.0;
    let mut agent_cells = 0.0;
    let mut hotpot_tool_hist = 0.0;
    let mut math_llm_hist = 0.0;
    let mut math_tool_hist = 0.0;
    let mut cot_tool_hist: f64 = 0.0;

    for benchmark in Benchmark::AGENTIC {
        for agent in agents_for(benchmark) {
            let outcomes = single_batch(agent, benchmark, scale);
            // Average over calls within a request, then over requests.
            let avg = |f: &dyn Fn(&agentsim_agents::ContextBreakdown) -> u32| {
                mean_of(&outcomes, |o| f(&o.trace.mean_breakdown()) as f64)
            };
            let instruction = avg(&|b| b.instruction);
            let fewshot = avg(&|b| b.fewshot);
            let user = avg(&|b| b.user);
            let llm_hist = avg(&|b| b.llm_history);
            let tool_hist = avg(&|b| b.tool_history);
            let output = avg(&|b| b.output);
            table.row(vec![
                benchmark.to_string(),
                agent.to_string(),
                format!("{instruction:.0}"),
                format!("{fewshot:.0}"),
                format!("{user:.0}"),
                format!("{llm_hist:.0}"),
                format!("{tool_hist:.0}"),
                format!("{output:.0}"),
            ]);
            if agent == AgentKind::Cot {
                cot_output = cot_output.max(output);
                cot_tool_hist = cot_tool_hist.max(tool_hist);
            } else {
                agent_output_sum += output;
                agent_cells += 1.0;
            }
            if agent == AgentKind::React {
                match benchmark {
                    Benchmark::HotpotQa => hotpot_tool_hist = tool_hist,
                    Benchmark::Math => {
                        math_llm_hist = llm_hist;
                        math_tool_hist = tool_hist;
                    }
                    _ => {}
                }
            }
        }
    }
    result.table("Mean tokens per LLM call, by category", table);

    let agent_output = agent_output_sum / agent_cells;
    result.check(
        "cot-long-single-output",
        cot_output > 3.0 * agent_output,
        format!(
            "CoT emits {cot_output:.0} output tokens per call vs agents' {agent_output:.0} \
             (paper: agents spread output across many short calls)"
        ),
    );
    result.check(
        "cot-never-uses-tools",
        cot_tool_hist == 0.0,
        "CoT context contains no tool history".into(),
    );
    result.check(
        "knowledge-tasks-have-large-tool-history",
        hotpot_tool_hist > math_tool_hist,
        format!(
            "ReAct tool-history tokens: HotpotQA {hotpot_tool_hist:.0} vs MATH {math_tool_hist:.0} \
             (paper: web/knowledge tools return page-sized observations)"
        ),
    );
    result.check(
        "math-leans-on-llm-history",
        math_llm_hist > math_tool_hist,
        format!(
            "MATH ReAct: LLM history {math_llm_hist:.0} vs tool history {math_tool_hist:.0} tokens"
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 6,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
