//! Simulator validation against closed forms.
//!
//! Before trusting the reproduction, verify that the discrete-event
//! machinery agrees with what can be computed analytically: single-
//! request latency from the roofline model, Poisson arrival statistics,
//! and the energy-power-time identity. Disagreement here would mean the
//! event loop itself (not the calibration) is wrong.

use agentsim_gpu::perf::PrefillItem;
use agentsim_gpu::{ClusterSpec, PerfModel};
use agentsim_kvcache::TokenBuf;
use agentsim_llm::{Engine, EngineConfig};
use agentsim_metrics::Table;
use agentsim_simkit::dist::{Exponential, Sample};
use agentsim_simkit::{SimRng, SimTime};

use crate::figure::{FigureResult, Scale};

/// Runs the validation suite.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "validation",
        "Simulator validation: event loop vs closed-form predictions",
    );
    let mut table = Table::with_columns(&["check", "analytic", "simulated", "rel err"]);

    // 1. Single-request latency = prefill step + (out-1) decode steps.
    let cfg = EngineConfig::a100_llama8b().with_prefix_caching(false);
    let perf = PerfModel::new(ClusterSpec::a100_llama8b());
    let (prompt_tokens, out_tokens) = (1024u32, 64u32);
    let mut analytic = perf
        .prefill(&[PrefillItem {
            new_tokens: prompt_tokens as u64,
            cached_tokens: 0,
        }])
        .duration
        .as_secs_f64();
    for i in 0..(out_tokens - 1) {
        analytic += perf
            .decode_step(&[(prompt_tokens + 1 + i) as u64])
            .duration
            .as_secs_f64();
    }
    let mut engine = Engine::new(cfg);
    engine.submit(
        SimTime::ZERO,
        TokenBuf::from_segment(1, prompt_tokens),
        out_tokens,
        1,
    );
    let mut now = SimTime::ZERO;
    while let Some(end) = engine.start_step_if_idle(now) {
        now = end;
        let _ = engine.complete_step(now);
    }
    let simulated = now.as_secs_f64();
    let latency_err = (simulated - analytic).abs() / analytic;
    table.row(vec![
        "single-request latency (s)".into(),
        format!("{analytic:.4}"),
        format!("{simulated:.4}"),
        format!("{latency_err:.2e}"),
    ]);
    result.check(
        "event-loop-matches-roofline-closed-form",
        latency_err < 1e-3,
        format!("relative error {latency_err:.2e}"),
    );

    // 2. Poisson arrivals: mean inter-arrival = 1/lambda, CV ~ 1.
    let lambda = 2.5;
    let n = (scale.serving_requests * 50).max(20_000);
    let gaps = Exponential::with_rate(lambda);
    let mut rng = SimRng::seed_from(scale.seed);
    let mut summary = agentsim_metrics::Summary::new();
    for _ in 0..n {
        summary.push(gaps.sample(&mut rng));
    }
    let mean_err = (summary.mean() - 1.0 / lambda).abs() * lambda;
    let cv = summary.std_dev() / summary.mean();
    table.row(vec![
        "mean inter-arrival (s)".into(),
        format!("{:.4}", 1.0 / lambda),
        format!("{:.4}", summary.mean()),
        format!("{mean_err:.2e}"),
    ]);
    table.row(vec![
        "inter-arrival CV".into(),
        "1.0000".into(),
        format!("{cv:.4}"),
        format!("{:.2e}", (cv - 1.0).abs()),
    ]);
    result.check(
        "arrivals-are-poisson",
        mean_err < 0.05 && (cv - 1.0).abs() < 0.08,
        format!("mean err {mean_err:.3}, CV {cv:.3}"),
    );

    // 3. Energy identity: busy+idle partition times the phase powers.
    let m = engine.metrics();
    let meter = m.energy_within(now);
    let expected_j = m.prefill_busy.as_secs_f64()
        * meter.model().power_w(agentsim_gpu::Phase::Prefill)
        + m.decode_busy.as_secs_f64() * meter.model().power_w(agentsim_gpu::Phase::Decode)
        + m.idle_within(now).as_secs_f64() * meter.model().power_w(agentsim_gpu::Phase::Idle);
    let energy_err = (meter.joules() - expected_j).abs() / expected_j.max(1e-9);
    table.row(vec![
        "request energy (J)".into(),
        format!("{expected_j:.2}"),
        format!("{:.2}", meter.joules()),
        format!("{energy_err:.2e}"),
    ]);
    result.check(
        "energy-equals-power-times-time",
        energy_err < 1e-9,
        format!("relative error {energy_err:.2e}"),
    );

    result.table("Event loop vs closed forms", table);
    result.note(
        "These identities hold exactly by construction; the value of checking \
         them is catching regressions in the step loop, scheduler accounting, \
         or energy integration.",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_passes() {
        let r = run(&Scale::quick());
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
