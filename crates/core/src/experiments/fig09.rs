//! Fig. 9: token count per iterative reasoning step (HotpotQA) — the
//! accumulation of LLM/tool history across LLM calls.

use agentsim_agents::AgentKind;
use agentsim_metrics::Table;
use agentsim_serving::SingleOutcome;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{agents_for, single_batch};

/// Mean input size at each call index, conditioned on requests that made
/// at least `min_calls` calls (so the averages track the same cohort and
/// subset effects cannot break monotonicity).
fn growth_series(outcomes: &[SingleOutcome], max_calls: usize, min_calls: usize) -> Vec<f64> {
    let cohort: Vec<&SingleOutcome> = outcomes
        .iter()
        .filter(|o| o.trace.llm.len() >= min_calls)
        .collect();
    let pool: Vec<&SingleOutcome> = if cohort.is_empty() {
        outcomes.iter().collect()
    } else {
        cohort
    };
    let mut sums = vec![0.0f64; max_calls];
    let mut counts = vec![0u64; max_calls];
    for o in pool {
        for (i, call) in o.trace.llm.iter().take(max_calls).enumerate() {
            sums[i] += call.breakdown.input_total() as f64;
            counts[i] += 1;
        }
    }
    sums.iter()
        .zip(&counts)
        .take_while(|(_, &c)| c > 0)
        .map(|(s, &c)| s / c as f64)
        .collect()
}

/// Measures context growth across iterations on HotpotQA.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig09",
        "Token count per iterative reasoning step on HotpotQA (Fig. 9)",
    );
    const STEPS: usize = 8;
    let mut table = Table::with_columns(&[
        "Agent", "call 1", "call 2", "call 3", "call 4", "call 5", "call 6", "call 7", "call 8",
    ]);

    let mut react_series = Vec::new();
    for agent in agents_for(Benchmark::HotpotQa) {
        let outcomes = single_batch(agent, Benchmark::HotpotQa, scale);
        let series = growth_series(&outcomes, STEPS, 1);
        let mut row = vec![agent.to_string()];
        for i in 0..STEPS {
            row.push(
                series
                    .get(i)
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        table.row(row);
        if agent == AgentKind::React {
            // Checks run over the 5-call cohort so every index averages
            // the same requests.
            react_series = growth_series(&outcomes, 5, 5);
        }
    }
    result.table("Mean input tokens at each LLM call", table);

    let first = react_series.first().copied().unwrap_or(0.0);
    let last = react_series.last().copied().unwrap_or(0.0);
    result.check(
        "initial-context-around-1k",
        (600.0..1800.0).contains(&first),
        format!("ReAct first-call input {first:.0} tokens (paper: ~1,000)"),
    );
    result.check(
        "context-grows-severalfold",
        last > 1.8 * first && last < 8.0 * first,
        format!(
            "ReAct input grows {first:.0} -> {last:.0} tokens ({:.1}x; paper: 3-4x)",
            last / first.max(1.0)
        ),
    );
    result.check(
        "growth-is-monotone",
        react_series.windows(2).all(|w| w[1] >= w[0]),
        "histories only accumulate".into(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let r = run(&Scale::quick());
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
