//! Fig. 19: latency and accuracy vs ReAct's maximum iteration budget.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{accuracy_of, mean_latency_s, p95_latency_s, single_batch_with};

const BUDGETS: [u32; 7] = [1, 2, 3, 5, 7, 10, 15];

/// Sweeps the iteration budget for ReAct on HotpotQA.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig19",
        "Latency and accuracy under iteration-budget constraints (Fig. 19)",
    );
    let mut table = Table::with_columns(&[
        "Budget",
        "Accuracy",
        "Avg latency s",
        "p95 latency s",
        "Acc/latency",
    ]);

    let mut series = Vec::new();
    for budget in BUDGETS {
        let outcomes = single_batch_with(
            AgentKind::React,
            Benchmark::HotpotQa,
            scale,
            EngineConfig::a100_llama8b(),
            AgentConfig::default_8b().with_max_iterations(budget),
        );
        let acc = accuracy_of(&outcomes);
        let avg = mean_latency_s(&outcomes);
        let p95 = p95_latency_s(&outcomes);
        table.row(vec![
            budget.to_string(),
            format!("{acc:.2}"),
            format!("{avg:.1}"),
            format!("{p95:.1}"),
            format!("{:.4}", acc / avg.max(1e-9)),
        ]);
        series.push((budget, acc, avg, p95));
    }
    result.table("ReAct/HotpotQA iteration-budget sweep", table);

    let by_budget = |b: u32| series.iter().find(|(x, ..)| *x == b).copied().unwrap();
    let (_, acc1, _, _) = by_budget(1);
    let (_, acc7, _, p95_7) = by_budget(7);
    let (_, acc15, _, p95_15) = by_budget(15);
    let best_acc = series.iter().map(|(_, a, ..)| *a).fold(0.0, f64::max);
    let best_eff = series
        .iter()
        .map(|&(b, a, l, _)| (b, a / l.max(1e-9)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|(b, _)| b)
        .unwrap_or(0);

    result.note(format!(
        "Max accuracy {best_acc:.2}; peak cost-efficiency at budget {best_eff} \
         (paper's blue diamond)."
    ));
    result.check(
        "deeper-budgets-help-initially",
        acc7 > acc1 + 0.05,
        format!("accuracy {acc1:.2} @ 1 iter -> {acc7:.2} @ 7 iters"),
    );
    result.check(
        "accuracy-saturates",
        (acc15 - acc7).abs() < 0.08,
        format!("accuracy {acc7:.2} @ 7 -> {acc15:.2} @ 15 (flat tail)"),
    );
    result.check(
        "tail-latency-keeps-growing",
        p95_15 > p95_7 * 1.15,
        format!("p95 {p95_7:.1}s @ 7 -> {p95_15:.1}s @ 15 (outliers consume the full budget)"),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 25,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
