//! Fig. 18: accuracy vs cost (latency, FLOPs) across AI agent design
//! points — the Pareto analysis.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{accuracy_of, mean_latency_s, mean_of, single_batch_with};

/// A named design point of the sweep.
fn design_points() -> Vec<(AgentKind, &'static str, AgentConfig)> {
    let base = AgentConfig::default_8b();
    vec![
        (AgentKind::Cot, "CoT", base),
        (AgentKind::React, "ReAct it=3", base.with_max_iterations(3)),
        (AgentKind::React, "ReAct it=7", base),
        (
            AgentKind::React,
            "ReAct it=12",
            base.with_max_iterations(12),
        ),
        (
            AgentKind::Reflexion,
            "Reflexion t=2",
            base.with_max_trials(2),
        ),
        (
            AgentKind::Reflexion,
            "Reflexion t=4",
            base.with_max_trials(4),
        ),
        (AgentKind::Lats, "LATS c=3", base.with_lats_children(3)),
        (AgentKind::Lats, "LATS c=8", base.with_lats_children(8)),
        (AgentKind::LlmCompiler, "LLMCompiler", base),
    ]
}

/// Runs the design-space sweep on every agentic benchmark.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig18",
        "Accuracy and cost-efficiency of agent design points (Fig. 18)",
    );

    let mut hotpot: Vec<(String, AgentKind, f64, f64, f64)> = Vec::new();
    for benchmark in Benchmark::AGENTIC {
        let mut table = Table::with_columns(&[
            "Design",
            "Accuracy",
            "Latency s",
            "PFLOPs",
            "Acc/lat (1/s)",
            "Acc/PFLOP",
        ]);
        for (kind, label, config) in design_points() {
            if !kind.supports(benchmark) {
                continue;
            }
            let outcomes =
                single_batch_with(kind, benchmark, scale, EngineConfig::a100_llama8b(), config);
            let acc = accuracy_of(&outcomes);
            let lat = mean_latency_s(&outcomes);
            let pflops = mean_of(&outcomes, |o| o.flops) / 1e15;
            table.row(vec![
                label.to_string(),
                format!("{acc:.2}"),
                format!("{lat:.1}"),
                format!("{pflops:.2}"),
                format!("{:.4}", acc / lat.max(1e-9)),
                format!("{:.3}", acc / pflops.max(1e-9)),
            ]);
            if benchmark == Benchmark::HotpotQa {
                hotpot.push((label.to_string(), kind, acc, lat, pflops));
            }
        }
        result.table(&format!("{benchmark} design space"), table);
    }

    let best = |kind: AgentKind| -> (f64, f64) {
        hotpot
            .iter()
            .filter(|(_, k, ..)| *k == kind)
            .map(|&(_, _, acc, lat, _)| (acc, lat))
            .fold((0.0, 0.0), |a, b| if b.0 > a.0 { b } else { a })
    };
    let (lats_acc, lats_lat) = best(AgentKind::Lats);
    let (react_acc, react_lat) = best(AgentKind::React);
    let (reflexion_acc, _) = best(AgentKind::Reflexion);

    result.check(
        "lats-most-accurate-most-expensive",
        lats_acc > react_acc && lats_acc > reflexion_acc && lats_lat > react_lat,
        format!(
            "HotpotQA: LATS acc {lats_acc:.2} @ {lats_lat:.0}s vs ReAct {react_acc:.2} @ \
             {react_lat:.0}s"
        ),
    );
    result.check(
        "react-is-cost-efficient",
        react_acc / react_lat.max(1e-9) > lats_acc / lats_lat.max(1e-9),
        format!(
            "accuracy-per-second: ReAct {:.4} vs LATS {:.4} (paper: ReAct has strong \
             compute efficiency)",
            react_acc / react_lat.max(1e-9),
            lats_acc / lats_lat.max(1e-9)
        ),
    );
    let react_points: Vec<&(String, AgentKind, f64, f64, f64)> = hotpot
        .iter()
        .filter(|(_, k, ..)| *k == AgentKind::React)
        .collect();
    let diminishing = react_points.len() >= 3 && {
        let a3 = react_points[0].2;
        let a7 = react_points[1].2;
        let a12 = react_points[2].2;
        (a7 - a3) >= (a12 - a7) - 0.02
    };
    result.check(
        "diminishing-returns-along-budget",
        diminishing,
        "ReAct accuracy gains shrink as the iteration budget grows".into(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 12,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
