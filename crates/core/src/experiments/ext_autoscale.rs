//! Extension: pool autoscaling for disaggregated serving — a hysteresis
//! controller that flips replicas between the prefill and decode pools
//! at runtime, priced against every static split.
//!
//! The paper's serving-cost story hinges on matching GPU supply to the
//! prefill/decode demand ratio, which differs across traffic classes:
//! ReAct re-reads its growing history every iteration (prefill-heavy,
//! Figs. 9–10) while chatbot traffic spends its life decoding, and a
//! KV-constrained decode pool thrashes long before the prefill pool
//! saturates. Whichever static split a cluster picks, some workload/load
//! point starves one pool while the other idles. This experiment gives
//! the cluster a demand-driven controller (hysteresis band on the
//! per-replica prefill/decode demand ratio, with a dwell timer and
//! explicit drain + reconfiguration cost per flip) and asks whether one
//! adaptive policy can track the best static split for *both* traffic
//! classes at iso-GPU count — and beat the worst split decisively.

use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_serving::{
    AutoscalePolicy, DisaggConfig, DisaggReport, DisaggSim, DisaggWorkload, HysteresisConfig,
};
use agentsim_simkit::SimDuration;

use crate::figure::{FigureResult, Scale};

/// 4-GPU budget: every policy below spends exactly this many replicas.
const GPUS: u32 = 4;

/// The static splits under comparison (prefill, decode).
const STATIC_SPLITS: [(u32, u32); 3] = [(3, 1), (2, 2), (1, 3)];

/// The adaptive policy starts from the middle split and earns its keep
/// by flipping.
const START_SPLIT: (u32, u32) = (2, 2);

fn hysteresis() -> AutoscalePolicy {
    AutoscalePolicy::Hysteresis(HysteresisConfig {
        dwell: SimDuration::from_millis(500),
        ..HysteresisConfig::default()
    })
}

fn run_split(
    workload: DisaggWorkload,
    qps: f64,
    n: u64,
    seed: u64,
    split: (u32, u32),
    autoscale: AutoscalePolicy,
) -> DisaggReport {
    // A KV-constrained engine (as in the serving goldens): an
    // undersized decode pool cannot hide behind bigger batches — it
    // thrashes its KV pool, and the preemption stalls land on TPOT.
    let engine = EngineConfig::a100_llama8b().with_kv_fraction(0.04);
    DisaggSim::new(
        DisaggConfig::new(workload, qps, n)
            .seed(seed)
            .engine(engine)
            .pools(split.0, split.1)
            .autoscale(autoscale),
    )
    .run()
}

fn tpot_p99(report: &DisaggReport) -> f64 {
    let mut tpot = report.tpot();
    tpot.try_percentile(99.0).unwrap_or(f64::NAN)
}

/// Compares the hysteresis controller against all static 4-GPU splits on
/// a prefill-heavy and a decode-heavy workload across a QPS sweep.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_autoscale",
        "Extension: autoscaled prefill/decode pools vs static splits, iso-GPU",
    );
    let n = scale.serving_requests;
    // Agent sessions are multi-call and long-lived, so realistic agent
    // arrival rates sit well below chatbot request rates.
    let workloads = [
        (
            "react (prefill-heavy)",
            DisaggWorkload::react_hotpotqa(),
            [2.0, 2.2],
        ),
        (
            "chatbot (decode-heavy)",
            DisaggWorkload::Chatbot,
            [2.0, 4.0],
        ),
    ];

    let mut table = Table::with_columns(&[
        "workload",
        "QPS",
        "policy",
        "tpot p99 ms",
        "ttft p95 s",
        "p95 s",
        "flips",
    ]);
    // Per-cell p99 TPOT, accumulated per policy. The sweep-wide figure
    // for a policy is the mean of its per-cell p99s: every sweep cell
    // weighs the same, regardless of how many LLM calls its workload
    // makes (react sessions emit several calls per request, chatbot one).
    let mut static_cells: Vec<Vec<f64>> = STATIC_SPLITS.iter().map(|_| Vec::new()).collect();
    let mut autoscale_cells: Vec<f64> = Vec::new();
    let mut total_flips = 0usize;
    for (wname, workload, qps_points) in &workloads {
        for &qps in qps_points {
            for (i, &split) in STATIC_SPLITS.iter().enumerate() {
                let report = run_split(
                    workload.clone(),
                    qps,
                    n,
                    scale.seed,
                    split,
                    AutoscalePolicy::Disabled,
                );
                let tpot = tpot_p99(&report);
                static_cells[i].push(tpot);
                let mut ttft = report.ttft();
                table.row(vec![
                    wname.to_string(),
                    format!("{qps:.1}"),
                    format!("static {}P+{}D", split.0, split.1),
                    format!("{:.1}", tpot * 1e3),
                    format!("{:.3}", ttft.try_p95().unwrap_or(f64::NAN)),
                    format!("{:.1}", report.p95_s),
                    "-".to_string(),
                ]);
            }
            let report = run_split(
                workload.clone(),
                qps,
                n,
                scale.seed,
                START_SPLIT,
                hysteresis(),
            );
            let tpot = tpot_p99(&report);
            autoscale_cells.push(tpot);
            total_flips += report.flips.len();
            let mut ttft = report.ttft();
            table.row(vec![
                wname.to_string(),
                format!("{qps:.1}"),
                "autoscale (hysteresis)".to_string(),
                format!("{:.1}", tpot * 1e3),
                format!("{:.3}", ttft.try_p95().unwrap_or(f64::NAN)),
                format!("{:.1}", report.p95_s),
                format!("{}", report.flips.len()),
            ]);
        }
    }
    result.table(
        &format!(
            "{GPUS}-GPU budget, {n} requests per cell; autoscale starts at \
             {}P+{}D with a warm flip cost",
            START_SPLIT.0, START_SPLIT.1
        ),
        table,
    );

    let mean = |cells: &[f64]| cells.iter().sum::<f64>() / cells.len() as f64;
    let static_p99: Vec<f64> = static_cells.iter().map(|c| mean(c)).collect();
    let autoscale_p99 = mean(&autoscale_cells);
    let best = static_p99.iter().copied().fold(f64::INFINITY, f64::min);
    let worst = static_p99.iter().copied().fold(0.0f64, f64::max);
    result.check(
        "autoscale-tracks-best-static-split",
        autoscale_p99 <= 1.10 * best,
        format!(
            "sweep-mean tpot p99: autoscale {:.1} ms vs best static {:.1} ms \
             (within {:.0}%)",
            autoscale_p99 * 1e3,
            best * 1e3,
            (autoscale_p99 / best - 1.0) * 100.0
        ),
    );
    result.check(
        "autoscale-beats-worst-static-split",
        autoscale_p99 <= 0.75 * worst,
        format!(
            "sweep-mean tpot p99: autoscale {:.1} ms vs worst static {:.1} ms \
             ({:.0}% better) — no single static split survives both traffic \
             classes",
            autoscale_p99 * 1e3,
            worst * 1e3,
            (1.0 - autoscale_p99 / worst) * 100.0
        ),
    );
    result.check(
        "controller-actually-flips",
        total_flips > 0,
        format!("{total_flips} role flips across the sweep"),
    );

    // Determinism: the adaptive path replays bit-identically — flips,
    // drains, and reconfiguration gaps included.
    let a = run_split(
        DisaggWorkload::react_hotpotqa(),
        2.0,
        n,
        scale.seed,
        START_SPLIT,
        hysteresis(),
    );
    let b = run_split(
        DisaggWorkload::react_hotpotqa(),
        2.0,
        n,
        scale.seed,
        START_SPLIT,
        hysteresis(),
    );
    result.check(
        "autoscaled-run-is-bit-deterministic",
        a.p95_s.to_bits() == b.p95_s.to_bits()
            && a.energy_wh.to_bits() == b.energy_wh.to_bits()
            && a.flips == b.flips
            && a.calls == b.calls,
        format!(
            "two runs, identical bits: p95 {:#x}, {} flips",
            a.p95_s.to_bits(),
            a.flips.len()
        ),
    );

    result.note(format!(
        "One adaptive policy, two opposite traffic classes, one GPU budget: \
         the hysteresis controller lands within {:.0}% of the best static \
         split's sweep-mean tpot p99 ({:.1} vs {:.1} ms) and {:.0}% under \
         the worst ({:.1} ms), paying an explicit drain + reconfiguration \
         cost for each of its {total_flips} flips. Static splits can only \
         buy one end of that trade.",
        (autoscale_p99 / best - 1.0) * 100.0,
        autoscale_p99 * 1e3,
        best * 1e3,
        (1.0 - autoscale_p99 / worst) * 100.0,
        worst * 1e3,
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        // Full quick scale: the worst static split needs enough sustained
        // load to actually collapse, and 24 requests is too short a run.
        let r = run(&Scale::quick());
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
