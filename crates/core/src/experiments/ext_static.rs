//! Extension: static vs dynamic test-time scaling. The paper's Fig. 1
//! taxonomy separates (b) reasoning-enhanced LLMs that scale by sampling
//! (Best-of-N, Self-Consistency) from (c) agents that scale by acting.
//! This experiment runs both ladders on the same substrate: how far does
//! static sampling get on a knowledge task, and at what cost, compared
//! to dynamic (tool-using) scaling?

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_serving::SingleRequest;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{accuracy_of, mean_latency_s, mean_of, single_batch_with};

/// Runs the static-vs-dynamic comparison on HotpotQA.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_static",
        "Extension: static (Best-of-N) vs dynamic (agentic) test-time scaling",
    );
    let mut table =
        Table::with_columns(&["Strategy", "Accuracy", "Latency s", "Energy Wh", "Acc/Wh"]);

    let mut static_points = Vec::new();
    for n in [1u32, 2, 4, 8, 16, 32] {
        let outcomes = SingleRequest::new(AgentKind::BestOfN, Benchmark::HotpotQa)
            .seed(scale.seed)
            .agent_config(AgentConfig::default_8b().with_lats_children(n))
            .run_batch(scale.samples);
        let acc = accuracy_of(&outcomes);
        let lat = mean_latency_s(&outcomes);
        let wh = mean_of(&outcomes, |o| o.energy_wh);
        table.row(vec![
            format!("Best-of-{n}"),
            format!("{acc:.2}"),
            format!("{lat:.1}"),
            format!("{wh:.2}"),
            format!("{:.2}", acc / wh.max(1e-9)),
        ]);
        static_points.push((n, acc, lat, wh));
    }

    let mut dynamic_points = Vec::new();
    for (kind, label) in [(AgentKind::React, "ReAct"), (AgentKind::Lats, "LATS c=5")] {
        let outcomes = single_batch_with(
            kind,
            Benchmark::HotpotQa,
            scale,
            EngineConfig::a100_llama8b(),
            AgentConfig::default_8b(),
        );
        let acc = accuracy_of(&outcomes);
        let lat = mean_latency_s(&outcomes);
        let wh = mean_of(&outcomes, |o| o.energy_wh);
        table.row(vec![
            label.to_string(),
            format!("{acc:.2}"),
            format!("{lat:.1}"),
            format!("{wh:.2}"),
            format!("{:.2}", acc / wh.max(1e-9)),
        ]);
        dynamic_points.push((label, acc, lat, wh));
    }
    result.table("HotpotQA (8B): static sampling ladder vs agents", table);

    let best_static = static_points
        .iter()
        .map(|&(_, acc, ..)| acc)
        .fold(0.0, f64::max);
    let (_, acc1, ..) = static_points[0];
    let (_, acc8, ..) = static_points[3];
    let (_, acc32, ..) = static_points[5];
    let lats = dynamic_points
        .iter()
        .find(|(l, ..)| *l == "LATS c=5")
        .copied()
        .expect("lats row");

    result.check(
        "static-sampling-helps-then-saturates",
        acc8 > acc1 && acc32 - acc8 < acc8 - acc1 + 0.02,
        format!("Best-of-N accuracy: {acc1:.2} @1 -> {acc8:.2} @8 -> {acc32:.2} @32"),
    );
    result.check(
        "dynamic-beats-any-static-budget",
        lats.1 > best_static + 0.1,
        format!(
            "LATS reaches {:.2} vs best static {best_static:.2} — resampling cannot \
             retrieve the evidence tools fetch (the paper's Fig. 1b vs 1c contrast)",
            lats.1
        ),
    );
    result.note(
        "Static scaling is cheap per point (one parallel batch, fully GPU-bound) \
         but hits a knowledge ceiling; agents spend more per query and idle the \
         GPU during tool calls, yet convert that compute into accuracy static \
         sampling cannot reach.",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 20,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
