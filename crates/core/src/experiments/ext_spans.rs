//! Extension: latency breakdown from real lifecycle spans. The paper's
//! Fig. 5 decomposes end-to-end latency from request-level bookkeeping;
//! this experiment rebuilds the decomposition bottom-up from step-level
//! observability (the `SpanRecorder`): every engine request's life is
//! partitioned into queue / prefill / decode / stall segments that sum
//! *exactly* to its end-to-end latency, so the shares below are measured,
//! not modeled.

use agentsim_metrics::Table;
use agentsim_serving::{RequestSpan, ServingConfig, ServingSim, ServingWorkload, SpanRecorder};
use agentsim_simkit::SimDuration;

use crate::figure::{FigureResult, Scale};

struct Breakdown {
    mean_e2e_s: f64,
    queue: f64,
    prefill: f64,
    decode: f64,
    stall: f64,
    exact: bool,
}

fn breakdown(spans: &[RequestSpan]) -> Breakdown {
    let mut total = SimDuration::ZERO;
    let mut queue = SimDuration::ZERO;
    let mut prefill = SimDuration::ZERO;
    let mut decode = SimDuration::ZERO;
    let mut stall = SimDuration::ZERO;
    let mut exact = true;
    for s in spans {
        let e2e = s.e2e().expect("span complete");
        exact &= s.attributed() == e2e;
        total += e2e;
        queue += s.queue_time;
        prefill += s.prefill_time;
        decode += s.decode_time;
        stall += s.stall_time;
    }
    let t = total.as_secs_f64().max(f64::MIN_POSITIVE);
    Breakdown {
        mean_e2e_s: total.as_secs_f64() / spans.len().max(1) as f64,
        queue: queue.as_secs_f64() / t,
        prefill: prefill.as_secs_f64() / t,
        decode: decode.as_secs_f64() / t,
        stall: stall.as_secs_f64() / t,
        exact,
    }
}

fn record(workload: ServingWorkload, qps: f64, requests: u64, seed: u64) -> SpanRecorder {
    let mut sim = ServingSim::new(ServingConfig::new(workload, qps, requests).seed(seed));
    let recorder = sim.attach_recorder();
    sim.run();
    recorder
}

/// Measures phase shares per workload and the effect of load on queueing.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_spans",
        "Extension: latency breakdown from lifecycle spans",
    );
    let n = scale.serving_requests;

    let mut table = Table::with_columns(&[
        "Workload",
        "qps",
        "LLM calls",
        "mean e2e s",
        "queue",
        "prefill",
        "decode",
        "stall",
    ]);
    let mut rows = Vec::new();
    for (label, workload, qps) in [
        ("chatbot", ServingWorkload::Chatbot, 0.5),
        ("chatbot (loaded)", ServingWorkload::Chatbot, 8.0),
        ("react", ServingWorkload::react_hotpotqa(), 0.5),
        ("react (loaded)", ServingWorkload::react_hotpotqa(), 4.0),
    ] {
        let recorder = record(workload, qps, n, scale.seed);
        let spans = recorder.spans();
        let b = breakdown(&spans);
        table.row(vec![
            label.to_string(),
            format!("{qps:.1}"),
            spans.len().to_string(),
            format!("{:.2}", b.mean_e2e_s),
            format!("{:.0}%", b.queue * 100.0),
            format!("{:.0}%", b.prefill * 100.0),
            format!("{:.0}%", b.decode * 100.0),
            format!("{:.0}%", b.stall * 100.0),
        ]);
        rows.push((label, b, recorder));
    }
    result.table(
        "Engine-time shares of end-to-end latency, measured from spans (Fig. 5 rebuilt bottom-up)",
        table,
    );

    let mut steps = Table::with_columns(&["Workload", "steps", "prefill", "decode", "mixed"]);
    for (label, _, recorder) in &rows {
        let s = recorder.steps();
        let count = |k: agentsim_llm::StepKind| s.iter().filter(|r| r.kind == k).count();
        steps.row(vec![
            label.to_string(),
            s.len().to_string(),
            count(agentsim_llm::StepKind::Prefill).to_string(),
            count(agentsim_llm::StepKind::Decode).to_string(),
            count(agentsim_llm::StepKind::Mixed).to_string(),
        ]);
    }
    result.table("Engine step mix over the same runs", steps);

    let get = |l: &str| &rows.iter().find(|(x, _, _)| *x == l).expect("row").1;
    result.check(
        "spans-partition-e2e-exactly",
        rows.iter().all(|(_, b, _)| b.exact),
        "queue+prefill+decode+stall must equal e2e for every request (integer microseconds)"
            .to_string(),
    );
    result.check(
        "decode-dominates-prefill-at-low-load",
        get("chatbot").decode > get("chatbot").prefill
            && get("react").decode > get("react").prefill,
        format!(
            "token-by-token decode dwarfs one-shot prefill: chatbot {:.0}%/{:.0}%, react {:.0}%/{:.0}%",
            get("chatbot").decode * 100.0,
            get("chatbot").prefill * 100.0,
            get("react").decode * 100.0,
            get("react").prefill * 100.0
        ),
    );
    // Waiting = admission queue + in-batch stall: both are scheduler-induced,
    // and which one absorbs the pressure depends on batch capacity vs KV
    // pressure, so the robust load signal is their sum.
    let waiting = |b: &Breakdown| b.queue + b.stall;
    result.check(
        "load-shifts-time-into-waiting",
        waiting(get("chatbot (loaded)")) > waiting(get("chatbot"))
            && waiting(get("react (loaded)")) > waiting(get("react")),
        format!(
            "queue+stall share at high vs low load: chatbot {:.1}% vs {:.1}%, react {:.1}% vs {:.1}%",
            waiting(get("chatbot (loaded)")) * 100.0,
            waiting(get("chatbot")) * 100.0,
            waiting(get("react (loaded)")) * 100.0,
            waiting(get("react")) * 100.0
        ),
    );
    result.note(
        "Unlike Fig. 5's request-level accounting, these shares come from step-level \
         spans: the engine emits events per step and the recorder rebuilds each \
         request's life, so scheduler-induced waiting (queue, stall) is visible and \
         exactly separated from compute (prefill, decode).",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 20,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
