//! Table II: description of benchmarks.

use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::agents_for;

/// Renders the benchmark catalog.
pub fn run(_scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new("table2", "Description of benchmarks (Table II)");
    let mut table = Table::with_columns(&["Benchmark", "Task", "Tools", "Agents"]);
    for b in Benchmark::AGENTIC {
        let tools: Vec<String> = b.tools().iter().map(|t| t.to_string()).collect();
        let agents: Vec<String> = agents_for(b).iter().map(|a| a.to_string()).collect();
        table.row(vec![
            b.to_string(),
            b.task_description().to_string(),
            tools.join(", "),
            agents.join(", "),
        ]);
    }
    result.table("Benchmark catalog", table);
    result.check(
        "omissions-match-paper",
        !agents_for(Benchmark::WebShop)
            .iter()
            .any(|a| a.to_string() == "CoT")
            && !agents_for(Benchmark::Math)
                .iter()
                .any(|a| a.to_string() == "LLMCompiler"),
        "CoT omitted from WebShop; LLMCompiler omitted from MATH/HumanEval".into(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lists_four_benchmarks() {
        let r = run(&Scale::quick());
        assert!(r.all_checks_pass());
        assert_eq!(r.tables[0].1.len(), 4);
        let csv = r.tables[0].1.to_csv();
        assert!(csv.contains("wikipedia.search"));
        assert!(csv.contains("Online shopping"));
    }
}
