//! Extension: congestion collapse and adaptive admission control on an
//! agent fleet. The paper's serving sections sweep offered load up to
//! the knee (Fig. 14) but stop where every real incident starts: past
//! it. An accept-all fleet keeps serving every arrival as queues grow,
//! so *throughput* looks healthy while *goodput* — turns finished within
//! their deadline — falls off a cliff, and the GPU time behind every
//! late answer is pure waste. This experiment drives the same fleet
//! through the knee under two policies: naive accept-all FIFO (deadlines
//! observed but nothing acted on), and an adaptive stack (AIMD
//! per-replica admission limits gating new sessions at the door,
//! freshest-first LIFO dispatch so stale arrivals expire in the queue
//! instead of on the GPU, and server-side cancellation that returns KV
//! and batch slots the moment a deadline fires).

use agentsim_metrics::Table;
use agentsim_serving::{
    AdmissionPolicy, FleetConfig, FleetReport, FleetSim, OverloadPolicy, QueueDiscipline, Routing,
};
use agentsim_simkit::SimDuration;

use crate::figure::{FigureResult, Scale};

/// Fleet size: enough parallelism that the knee is a fleet property, not
/// a single-replica artifact.
const REPLICAS: u32 = 3;

/// Per-turn deadline. Binds only past the knee: the p95 turn latency at
/// the lowest sweep point sits well under it.
const DEADLINE: SimDuration = SimDuration::from_secs(25);

/// Offered loads swept through the knee (the fleet saturates near the
/// middle of this range).
const QPS_POINTS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

fn naive_policy() -> OverloadPolicy {
    // Deadlines are *measured* (late turns counted) but nothing acts on
    // them: every arrival admitted, FIFO order, work runs to completion
    // however stale.
    OverloadPolicy::none().deadline(DEADLINE)
}

fn adaptive_policy() -> OverloadPolicy {
    // The AIMD band is sized to the KV-constrained replicas below. The
    // ceiling matters because a limiter that drifts to the library
    // default of 64 in-flight calls pushes the engine into the same KV
    // thrashing it exists to prevent; the floor matters because under
    // sustained overload every expired turn is a timeout signal, and a
    // floor of 1 would starve the fleet down to three concurrent calls.
    let admission = AdmissionPolicy::Aimd {
        initial: 8.0,
        min: 6.0,
        max: 12.0,
        increase: 1.0,
        decrease: 0.5,
    };
    OverloadPolicy::none()
        .deadline(DEADLINE)
        .cancel_on_expiry()
        .admission(admission)
        .discipline(QueueDiscipline::Lifo)
}

/// Seconds of offered load per sweep point, scaled so every point sees
/// the same arrival *window* rather than the same arrival *count*: a
/// fixed count compresses into a shorter burst as qps rises, and the
/// ramp-in and drain edges would then dominate the high-load points.
fn window_s(scale: &Scale) -> f64 {
    2.0 * scale.serving_requests as f64
}

/// Turns offered at `qps` over the fixed window.
fn turns_for(scale: &Scale, qps: f64) -> u64 {
    (qps * window_s(scale)).round() as u64
}

fn run_point(scale: &Scale, qps: f64, policy: OverloadPolicy, threads: u32) -> FleetReport {
    let turns = turns_for(scale, qps);
    let config = FleetConfig::react_hotpotqa(REPLICAS, Routing::LeastLoaded, qps, turns)
        .seed(scale.seed)
        .overload(policy)
        .threads(threads);
    // KV-constrained replicas (as in the serving goldens): past the knee
    // a deep backlog thrashes the KV pool, so per-turn service *slows
    // down* exactly when load rises — the mechanism behind congestion
    // collapse. Admission control defends by keeping the excess queued
    // at the coordinator instead of resident on the engine.
    let config = config.map_engines(|e| e.with_kv_fraction(0.06));
    FleetSim::new(config).run()
}

/// Sweeps offered load through the knee under accept-all and adaptive
/// admission, comparing goodput, lateness, and wasted GPU time.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_overload",
        "Extension: congestion collapse vs adaptive admission control",
    );
    let mut table = Table::with_columns(&[
        "QPS",
        "policy",
        "tput",
        "goodput",
        "on-time",
        "late",
        "shed",
        "wasted GPU s",
    ]);
    let mut naive = Vec::new();
    let mut adaptive = Vec::new();
    for &qps in &QPS_POINTS {
        for (name, policy, out) in [
            ("accept-all", naive_policy(), &mut naive),
            ("adaptive", adaptive_policy(), &mut adaptive),
        ] {
            let report = run_point(scale, qps, policy, 1);
            table.row(vec![
                format!("{qps:.0}"),
                name.to_string(),
                format!("{:.2}", report.throughput),
                format!("{:.2}", report.goodput),
                format!("{}", report.completed),
                format!("{}", report.late),
                format!("{}", report.cancelled + report.dropped),
                format!("{:.1}", report.wasted_gpu_s),
            ]);
            out.push((qps, report));
        }
    }
    result.table(
        &format!(
            "ReAct/HotpotQA on {REPLICAS} replicas, {:.0}s of offered load per \
             point, {}s deadline; goodput counts turns finished on time",
            window_s(scale),
            DEADLINE.as_secs_f64()
        ),
        table,
    );

    let peak = |points: &[(f64, FleetReport)]| {
        points.iter().map(|(_, r)| r.goodput).fold(0.0f64, f64::max)
    };
    let naive_peak = peak(&naive);
    let adaptive_peak = peak(&adaptive);
    let naive_end = &naive.last().expect("non-empty sweep").1;
    let adaptive_end = &adaptive.last().expect("non-empty sweep").1;

    result.check(
        "accept-all-goodput-collapses-past-the-knee",
        naive_end.goodput <= 0.6 * naive_peak,
        format!(
            "accept-all goodput at {} qps: {:.2}/s vs peak {:.2}/s ({:.0}% drop) — \
             every queued turn still runs, almost none on time",
            QPS_POINTS[QPS_POINTS.len() - 1],
            naive_end.goodput,
            naive_peak,
            (1.0 - naive_end.goodput / naive_peak) * 100.0
        ),
    );
    result.check(
        "adaptive-defends-goodput-past-the-knee",
        adaptive_end.goodput >= 0.9 * adaptive_peak,
        format!(
            "adaptive goodput at {} qps: {:.2}/s vs peak {:.2}/s (within {:.0}%) — \
             shedding stale work keeps the fleet serving fresh work",
            QPS_POINTS[QPS_POINTS.len() - 1],
            adaptive_end.goodput,
            adaptive_peak,
            (1.0 - adaptive_end.goodput / adaptive_peak).abs() * 100.0
        ),
    );
    result.check(
        "goodput-never-exceeds-throughput",
        naive
            .iter()
            .chain(adaptive.iter())
            .all(|(_, r)| r.goodput <= r.throughput),
        "goodput counts a subset of the turns throughput counts".to_string(),
    );
    result.check(
        "lateness-is-where-the-naive-gpu-time-goes",
        naive_end.late > 0 && naive_end.wasted_gpu_s > adaptive_end.wasted_gpu_s,
        format!(
            "at {} qps accept-all finished {} turns late, burning {:.1} GPU-s on \
             answers nobody waited for vs {:.1} GPU-s under adaptive shedding",
            QPS_POINTS[QPS_POINTS.len() - 1],
            naive_end.late,
            naive_end.wasted_gpu_s,
            adaptive_end.wasted_gpu_s
        ),
    );
    result.check(
        "adaptive-sheds-rather-than-queues",
        adaptive_end.cancelled + adaptive_end.dropped > 0
            && adaptive_end.completed + adaptive_end.abandoned
                == turns_for(scale, QPS_POINTS[QPS_POINTS.len() - 1]),
        format!(
            "adaptive at {} qps: {} completed + {} shed = every turn resolved exactly once",
            QPS_POINTS[QPS_POINTS.len() - 1],
            adaptive_end.completed,
            adaptive_end.abandoned
        ),
    );

    // Determinism at the collapse point: the adaptive stack (deadline
    // timers, cancellation acks, AIMD decisions, queue sheds) replays
    // bit-identically run over run and across worker-thread counts.
    let collapse_qps = QPS_POINTS[QPS_POINTS.len() - 1];
    let again = run_point(scale, collapse_qps, adaptive_policy(), 1);
    let threaded = run_point(scale, collapse_qps, adaptive_policy(), 2);
    result.check(
        "overload-path-is-bit-deterministic",
        adaptive_end.goodput.to_bits() == again.goodput.to_bits()
            && adaptive_end.goodput.to_bits() == threaded.goodput.to_bits()
            && adaptive_end.wasted_gpu_s.to_bits() == threaded.wasted_gpu_s.to_bits()
            && adaptive_end.cancelled == threaded.cancelled
            && adaptive_end.dropped == threaded.dropped,
        format!(
            "goodput bits {:016x}: sequential rerun and threads(2) reproduce the \
             collapse-point report exactly",
            adaptive_end.goodput.to_bits()
        ),
    );

    result.note(format!(
        "Past the knee, throughput is a vanity metric: the accept-all fleet still \
         reports {:.2} turns/s at {collapse_qps} qps while goodput sits at {:.2}/s. \
         The adaptive stack holds {:.2}/s by refusing work it cannot finish — AIMD \
         admission bounds in-flight calls per replica, freshest-first dispatch \
         lets stale turns expire in the queue rather than on the GPU, and \
         server-side cancellation stops burning prefill and decode on attempts \
         whose client has already given up.",
        naive_end.throughput, naive_end.goodput, adaptive_end.goodput,
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let r = run(&Scale::quick());
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
