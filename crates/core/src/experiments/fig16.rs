//! Fig. 16: average and maximum KV-cache memory during serving, with and
//! without prefix caching.

use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_serving::{ServingConfig, ServingSim, ServingWorkload};
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};

const GIB: f64 = (1u64 << 30) as f64;

/// Measures serving KV occupancy ± prefix caching at the paper's operating
/// points (0.2 QPS HotpotQA, 0.1 QPS WebShop, ReAct).
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig16",
        "Serving KV-cache memory with and without prefix caching (Fig. 16)",
    );
    let mut table = Table::with_columns(&[
        "Benchmark",
        "Avg GiB (on)",
        "Avg GiB (off)",
        "Max GiB (on)",
        "Max GiB (off)",
    ]);

    let mut avg_savings = Vec::new();
    let mut max_savings = Vec::new();
    for (benchmark, qps) in [(Benchmark::HotpotQa, 0.2), (Benchmark::WebShop, 0.1)] {
        let run_one = |caching: bool| {
            let workload = ServingWorkload::Agent {
                kind: agentsim_agents::AgentKind::React,
                benchmark,
                config: agentsim_agents::AgentConfig::default_8b(),
            };
            let cfg = ServingConfig::new(workload, qps, scale.serving_requests)
                .seed(scale.seed)
                .engine(EngineConfig::a100_llama8b().with_prefix_caching(caching));
            ServingSim::new(cfg).run()
        };
        let on = run_one(true);
        let off = run_one(false);
        table.row(vec![
            benchmark.to_string(),
            format!("{:.3}", on.kv_avg_bytes / GIB),
            format!("{:.3}", off.kv_avg_bytes / GIB),
            format!("{:.3}", on.kv_max_bytes as f64 / GIB),
            format!("{:.3}", off.kv_max_bytes as f64 / GIB),
        ]);
        avg_savings.push(1.0 - on.kv_avg_bytes / off.kv_avg_bytes.max(1.0));
        max_savings.push(1.0 - on.kv_max_bytes as f64 / (off.kv_max_bytes as f64).max(1.0));
    }
    result.table("KV occupancy during ReAct serving", table);

    let avg_saving = avg_savings.iter().sum::<f64>() / avg_savings.len() as f64;
    let max_saving = max_savings.iter().sum::<f64>() / max_savings.len() as f64;
    result.check(
        "caching-cuts-average-kv",
        avg_saving > 0.2,
        format!(
            "average KV reduced {:.0}% with prefix caching (paper: 51.7%)",
            avg_saving * 100.0
        ),
    );
    result.check(
        "caching-cuts-peak-kv",
        max_saving > 0.15,
        format!(
            "peak KV reduced {:.0}% with prefix caching (paper: 63.5%)",
            max_saving * 100.0
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 30,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
