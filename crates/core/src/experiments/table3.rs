//! Table III: energy and datacenter-wide power demands of agent serving.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::EngineConfig;
use agentsim_metrics::power::{
    format_watts, PowerProjection, CHATGPT_QUERIES_PER_DAY, GOOGLE_QUERIES_PER_DAY,
};
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{accuracy_of, mean_latency_s, mean_of, sharegpt_single, single_batch_with};

struct Row {
    model: &'static str,
    name: &'static str,
    accuracy: Option<f64>,
    latency_s: f64,
    wh_per_query: f64,
}

/// Measures the paper's Table III rows: ShareGPT baseline plus the
/// highest-accuracy Reflexion (sequential) and LATS (parallel) design
/// points on HotpotQA, for both model sizes.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "table3",
        "Energy and power demands of agent serving on HotpotQA (Table III)",
    );

    let mut rows: Vec<Row> = Vec::new();
    for (model, engine, base) in [
        (
            "8B",
            EngineConfig::a100_llama8b(),
            AgentConfig::default_8b(),
        ),
        (
            "70B",
            EngineConfig::a100x8_llama70b(),
            AgentConfig::default_70b(),
        ),
    ] {
        let (chat_latency, chat_wh) = sharegpt_single(scale, &engine);
        rows.push(Row {
            model,
            name: "ShareGPT",
            accuracy: None,
            latency_s: chat_latency,
            wh_per_query: chat_wh,
        });
        // Highest-accuracy configurations (paper: selected from Fig. 22).
        let reflexion = single_batch_with(
            AgentKind::Reflexion,
            Benchmark::HotpotQa,
            scale,
            engine.clone(),
            base.with_max_trials(8).with_max_iterations(15),
        );
        rows.push(Row {
            model,
            name: "Reflexion",
            accuracy: Some(accuracy_of(&reflexion)),
            latency_s: mean_latency_s(&reflexion),
            wh_per_query: mean_of(&reflexion, |o| o.energy_wh),
        });
        let lats = single_batch_with(
            AgentKind::Lats,
            Benchmark::HotpotQa,
            scale,
            engine.clone(),
            base.with_lats_children(8).with_lats_iterations(12),
        );
        rows.push(Row {
            model,
            name: "LATS",
            accuracy: Some(accuracy_of(&lats)),
            latency_s: mean_latency_s(&lats),
            wh_per_query: mean_of(&lats, |o| o.energy_wh),
        });
    }

    let baseline = |model: &str| {
        rows.iter()
            .find(|r| r.model == model && r.name == "ShareGPT")
            .map(|r| (r.latency_s, r.wh_per_query))
            .expect("baseline present")
    };

    let mut table = Table::with_columns(&[
        "Model",
        "Workflow",
        "Accuracy %",
        "Latency s",
        "Wh/query",
        "x baseline",
        "Power @71.4M q/d",
        "Power @13.7B q/d",
    ]);
    for r in &rows {
        let (_, base_wh) = baseline(r.model);
        let projection = PowerProjection::new(r.wh_per_query);
        table.row(vec![
            r.model.to_string(),
            r.name.to_string(),
            r.accuracy
                .map(|a| format!("{:.0}", a * 100.0))
                .unwrap_or_else(|| "-".to_string()),
            format!("{:.1}", r.latency_s),
            format!("{:.2}", r.wh_per_query),
            format!("{:.1}x", r.wh_per_query / base_wh),
            format_watts(projection.watts(CHATGPT_QUERIES_PER_DAY)),
            format_watts(projection.watts(GOOGLE_QUERIES_PER_DAY)),
        ]);
    }
    result.table(
        "Per-query energy and projected datacenter power (P = Wh/query x q/day / 24h)",
        table,
    );

    let find = |model: &str, name: &str| {
        rows.iter()
            .find(|r| r.model == model && r.name == name)
            .expect("row present")
    };
    let chat8 = find("8B", "ShareGPT");
    let chat70 = find("70B", "ShareGPT");
    let reflexion8 = find("8B", "Reflexion");
    let reflexion70 = find("70B", "Reflexion");
    let lats8 = find("8B", "LATS");
    let lats70 = find("70B", "LATS");

    result.check(
        "sharegpt-baseline-energy-in-band",
        (0.1..1.0).contains(&chat8.wh_per_query) && (1.0..6.0).contains(&chat70.wh_per_query),
        format!(
            "ShareGPT: 8B {:.2} Wh, 70B {:.2} Wh per query (paper: 0.32 / 2.55)",
            chat8.wh_per_query, chat70.wh_per_query
        ),
    );
    let mult8 = reflexion8.wh_per_query / chat8.wh_per_query;
    let mult70 = reflexion70.wh_per_query / chat70.wh_per_query;
    result.check(
        "agentic-queries-cost-orders-more",
        mult8 > 6.0 && mult70 > 3.0,
        format!(
            "Reflexion energy multiplier: 8B {mult8:.0}x, 70B {mult70:.0}x over single-turn \
             (paper: 131x/137x; the gap is our shorter trajectories — see EXPERIMENTS.md)"
        ),
    );
    result.check(
        "lats-more-accurate-and-cheaper-than-reflexion",
        lats8.accuracy > reflexion8.accuracy && lats8.wh_per_query < reflexion8.wh_per_query,
        format!(
            "8B: LATS {:.0}% @ {:.1} Wh vs Reflexion {:.0}% @ {:.1} Wh (paper: 80% @ 22.8 \
             vs 38% @ 41.5)",
            lats8.accuracy.unwrap_or(0.0) * 100.0,
            lats8.wh_per_query,
            reflexion8.accuracy.unwrap_or(0.0) * 100.0,
            reflexion8.wh_per_query
        ),
    );
    result.check(
        "seventy-b-agents-approach-gigawatt-scale",
        PowerProjection::new(reflexion70.wh_per_query).watts(GOOGLE_QUERIES_PER_DAY) > 1e9,
        format!(
            "Reflexion/70B at Google-scale traffic: {} (paper: ~198.9 GW)",
            format_watts(
                PowerProjection::new(reflexion70.wh_per_query).watts(GOOGLE_QUERIES_PER_DAY)
            )
        ),
    );
    result.check(
        "big-model-agents-cost-more-absolute-energy",
        reflexion70.wh_per_query > reflexion8.wh_per_query
            && lats70.wh_per_query > lats8.wh_per_query,
        format!(
            "70B vs 8B energy: Reflexion {:.1} vs {:.1} Wh, LATS {:.1} vs {:.1} Wh",
            reflexion70.wh_per_query,
            reflexion8.wh_per_query,
            lats70.wh_per_query,
            lats8.wh_per_query
        ),
    );
    result.note(
        "Absolute Wh/query runs below the paper's testbed numbers (its Reflexion \
         configurations reach 650-720 s per request on real APIs and servers); the \
         ordering, multipliers and power-projection structure are what this \
         reproduction preserves.",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 15,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
        assert_eq!(r.tables[0].1.len(), 6);
    }
}
