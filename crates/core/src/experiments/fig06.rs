//! Fig. 6: breakdown of GPU runtime (prefill / decode / idle) and the
//! resulting average GPU utilization.

use agentsim_agents::AgentKind;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{agents_for, mean_of, single_batch};

/// Measures the GPU phase partition while serving one request at a time.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig06",
        "GPU runtime breakdown by usage and average utilization (Fig. 6)",
    );
    let mut table = Table::with_columns(&[
        "Benchmark",
        "Agent",
        "Prefill %",
        "Decode %",
        "Idle %",
        "Utilization",
    ]);

    let mut cot_util = 0.0f64;
    let mut worst_idle: f64 = 0.0;
    let mut decode_share_sum = 0.0;
    let mut prefill_share_sum = 0.0;
    let mut cells = 0.0;

    for benchmark in Benchmark::AGENTIC {
        for agent in agents_for(benchmark) {
            let outcomes = single_batch(agent, benchmark, scale);
            let window = mean_of(&outcomes, |o| o.trace.e2e().as_secs_f64()).max(1e-9);
            let prefill = mean_of(&outcomes, |o| o.prefill_busy.as_secs_f64()) / window;
            let decode = mean_of(&outcomes, |o| o.decode_busy.as_secs_f64()) / window;
            let idle = mean_of(&outcomes, |o| o.idle.as_secs_f64()) / window;
            let util = mean_of(&outcomes, |o| o.utilization);
            table.row(vec![
                benchmark.to_string(),
                agent.to_string(),
                format!("{:.1}%", prefill * 100.0),
                format!("{:.1}%", decode * 100.0),
                format!("{:.1}%", idle * 100.0),
                format!("{:.2}", util),
            ]);
            if agent == AgentKind::Cot {
                cot_util = cot_util.max(util);
            } else {
                worst_idle = worst_idle.max(idle);
                decode_share_sum += decode;
                prefill_share_sum += prefill;
                cells += 1.0;
            }
        }
    }
    result.table("GPU time partition (fraction of request window)", table);

    let decode_mean = decode_share_sum / cells;
    let prefill_mean = prefill_share_sum / cells;
    result.check(
        "cot-keeps-gpu-busy",
        cot_util > 0.9,
        format!("CoT utilization {cot_util:.2} (no tool phases)"),
    );
    result.check(
        "agents-idle-the-gpu",
        worst_idle > 0.3,
        format!(
            "worst-case idle fraction {:.0}% (paper: up to 54.5%)",
            worst_idle * 100.0
        ),
    );
    result.check(
        "decode-dominates-prefill",
        decode_mean > 5.0 * prefill_mean,
        format!(
            "mean decode {:.1}% vs prefill {:.1}% of runtime (paper: 74.1% vs 4.7%)",
            decode_mean * 100.0,
            prefill_mean * 100.0
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 6,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
