//! Ablation: chunked prefill. With classic scheduling, a long prefill
//! occupies whole engine steps and stalls every decoding request (the
//! interference the paper blames for agent tail latency); chunked prefill
//! co-schedules prefill chunks with decodes, trading a little prefill
//! speed for much smoother decode progress.

use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_serving::{ServingConfig, ServingSim, ServingWorkload};

use crate::figure::{FigureResult, Scale};

/// Compares classic vs chunked-prefill scheduling under chatbot load.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ablation_chunked",
        "Ablation: chunked prefill vs classic scheduling",
    );
    let mut table =
        Table::with_columns(&["Scheduler", "QPS", "tput", "p50 s", "p95 s", "mixed steps"]);

    let mut p95 = Vec::new();
    for (name, chunked) in [("classic", false), ("chunked", true)] {
        for qps in [2.0, 5.0] {
            let cfg = ServingConfig::new(ServingWorkload::Chatbot, qps, scale.serving_requests)
                .seed(scale.seed)
                .engine(EngineConfig::a100_llama8b().with_chunked_prefill(chunked));
            let report = ServingSim::new(cfg).run();
            table.row(vec![
                name.to_string(),
                format!("{qps:.1}"),
                format!("{:.2}", report.throughput()),
                format!("{:.1}", report.p50_s),
                format!("{:.1}", report.p95_s),
                "-".to_string(),
            ]);
            p95.push((name, qps, report.p95_s, report.throughput()));
        }
    }
    result.table("ShareGPT serving under the two schedulers", table);

    let find = |name: &str, qps: f64| {
        p95.iter()
            .find(|(n, q, ..)| *n == name && *q == qps)
            .copied()
            .unwrap()
    };
    let (_, _, classic_p95, classic_tput) = find("classic", 5.0);
    let (_, _, chunked_p95, chunked_tput) = find("chunked", 5.0);
    result.check(
        "both-schedulers-keep-up",
        classic_tput > 0.0 && chunked_tput > 0.0,
        format!("throughputs: classic {classic_tput:.2}, chunked {chunked_tput:.2}"),
    );
    result.check(
        "chunking-tames-the-tail-or-ties",
        chunked_p95 < classic_p95 * 1.3,
        format!(
            "p95 at 5 QPS: chunked {chunked_p95:.1}s vs classic {classic_p95:.1}s \
             (chunked prefill removes prefill-blocks-decode stalls)"
        ),
    );
    result.note(
        "The paper identifies long prefill phases as a scheduling hazard in \
         token-level schedulers (its Fig. 15 discussion); this ablation shows the \
         mitigation vLLM later shipped as chunked prefill.",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 40,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
