//! Table I: comparison of AI agent capabilities.

use agentsim_agents::AgentKind;
use agentsim_metrics::Table;

use crate::figure::{FigureResult, Scale};

/// Renders the capability matrix.
pub fn run(_scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new("table1", "Comparison of AI agents (Table I)");
    let mut table = Table::with_columns(&[
        "Agent",
        "Reasoning",
        "Tool Use",
        "Reflection",
        "Tree Search",
        "Structured Planning",
    ]);
    let mark = |b: bool| if b { "O" } else { "X" }.to_string();
    for kind in AgentKind::ALL {
        let c = kind.capabilities();
        table.row(vec![
            kind.to_string(),
            mark(c.reasoning),
            mark(c.tool_use),
            mark(c.reflection),
            mark(c.tree_search),
            mark(c.structured_planning),
        ]);
    }
    result.table("Capability matrix", table);
    result.check(
        "capability-ordering",
        capability_chain_is_monotone(),
        "CoT ⊂ ReAct ⊂ Reflexion ⊂ LATS capability sets".into(),
    );
    result
}

fn capability_chain_is_monotone() -> bool {
    let count = |k: AgentKind| {
        let c = k.capabilities();
        [c.reasoning, c.tool_use, c.reflection, c.tree_search]
            .iter()
            .filter(|&&b| b)
            .count()
    };
    count(AgentKind::Cot) < count(AgentKind::React)
        && count(AgentKind::React) < count(AgentKind::Reflexion)
        && count(AgentKind::Reflexion) < count(AgentKind::Lats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper() {
        let r = run(&Scale::quick());
        assert!(r.all_checks_pass());
        let (_, table) = &r.tables[0];
        assert_eq!(table.len(), 5);
        // CoT row: reasoning only.
        assert_eq!(table.rows()[0][1], "O");
        assert_eq!(table.rows()[0][2], "X");
        // LLMCompiler has structured planning.
        assert_eq!(table.rows()[4][5], "O");
    }
}
