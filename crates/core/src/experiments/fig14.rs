//! Fig. 14: p50/p95 latency vs offered QPS for chatbot and agent
//! workloads, with prefix caching enabled.

use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_serving::{peak_throughput, qps_sweep, ServingWorkload};
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};

fn agent_workload(benchmark: Benchmark) -> ServingWorkload {
    ServingWorkload::Agent {
        kind: agentsim_agents::AgentKind::React,
        benchmark,
        config: agentsim_agents::AgentConfig::default_8b(),
    }
}

/// Sweeps offered load for the three paper workloads.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig14",
        "Tail latency vs QPS: ShareGPT chatbot vs ReAct agent (Fig. 14)",
    );
    let engine = EngineConfig::a100_llama8b();

    let chatbot_points = [0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0];
    let agent_points = [0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0];

    let mut peaks = Vec::new();
    for (name, workload, points) in [
        ("ShareGPT", ServingWorkload::Chatbot, &chatbot_points[..]),
        (
            "ReAct/HotpotQA",
            agent_workload(Benchmark::HotpotQa),
            &agent_points[..],
        ),
        (
            "ReAct/WebShop",
            agent_workload(Benchmark::WebShop),
            &agent_points[..],
        ),
    ] {
        let sweep = qps_sweep(
            &engine,
            &workload,
            points,
            scale.serving_requests,
            scale.seed,
        );
        let mut table = Table::with_columns(&["QPS", "tput", "p50 s", "p95 s"]);
        for p in &sweep {
            table.row(vec![
                format!("{:.2}", p.qps),
                format!("{:.2}", p.report.throughput()),
                format!("{:.1}", p.report.p50_s),
                format!("{:.1}", p.report.p95_s),
            ]);
        }
        result.table(&format!("{name} load sweep"), table);
        peaks.push((name, peak_throughput(&sweep)));
    }

    let peak = |name: &str| {
        peaks
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    };
    let chatbot = peak("ShareGPT");
    let hotpot = peak("ReAct/HotpotQA");
    let webshop = peak("ReAct/WebShop");
    result.note(format!(
        "Peak sustainable throughput: ShareGPT {chatbot:.1}, ReAct/HotpotQA {hotpot:.1}, \
         ReAct/WebShop {webshop:.1} QPS. Paper anchors: 6.4 / 2.6 / 1.2 QPS."
    ));
    result.check(
        "chatbot-sustains-more-load",
        chatbot > 1.3 * hotpot.max(webshop),
        format!("ShareGPT peak {chatbot:.1} vs agents {hotpot:.1}/{webshop:.1} QPS"),
    );
    result.check(
        "agents-within-paper-band",
        (1.2..5.0).contains(&hotpot),
        format!("ReAct/HotpotQA peak {hotpot:.1} QPS (paper: 2.6)"),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 40,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
