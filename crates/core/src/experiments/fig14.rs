//! Fig. 14: p50/p95 latency vs offered QPS for chatbot and agent
//! workloads, with prefix caching enabled — plus the "where did the
//! tail go" phase breakdown per load point, rebuilt from lifecycle
//! spans.

use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_serving::{
    peak_throughput, qps_sweep, qps_sweep_observed, Phase, ServingWorkload, SweepPoint,
};
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};

fn agent_workload(benchmark: Benchmark) -> ServingWorkload {
    ServingWorkload::Agent {
        kind: agentsim_agents::AgentKind::React,
        benchmark,
        config: agentsim_agents::AgentConfig::default_8b(),
    }
}

/// Sweeps offered load for the three paper workloads.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig14",
        "Tail latency vs QPS: ShareGPT chatbot vs ReAct agent (Fig. 14)",
    );
    let engine = EngineConfig::a100_llama8b();

    let chatbot_points = [0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0];
    let agent_points = [0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0];

    let mut peaks = Vec::new();

    // ReAct/HotpotQA runs with per-point span recorders: same seeds and
    // reports as a plain sweep, plus the phase attribution.
    let observed = qps_sweep_observed(
        &engine,
        &agent_workload(Benchmark::HotpotQa),
        &agent_points,
        scale.serving_requests,
        scale.seed,
    );
    {
        let mut table = Table::with_columns(&["QPS", "tput", "p50 s", "p95 s"]);
        for p in &observed {
            table.row(vec![
                format!("{:.2}", p.qps),
                format!("{:.2}", p.report.throughput()),
                format!("{:.1}", p.report.p50_s),
                format!("{:.1}", p.report.p95_s),
            ]);
        }
        result.table("ReAct/HotpotQA load sweep", table);
        let as_points: Vec<SweepPoint> = observed
            .iter()
            .map(|p| SweepPoint {
                qps: p.qps,
                report: p.report.clone(),
            })
            .collect();
        peaks.push(("ReAct/HotpotQA", peak_throughput(&as_points)));
    }

    // Where did the tail go: per load point, the share of time the
    // slowest 5% of requests spent in each lifecycle phase.
    let mut phase_table = Table::with_columns(&[
        "QPS",
        "tail queue %",
        "tail prefill %",
        "tail decode %",
        "tail stall %",
        "all stall %",
    ]);
    for p in &observed {
        let pct = |x: f64| format!("{:.0}", x * 100.0);
        phase_table.row(vec![
            format!("{:.2}", p.qps),
            pct(p.tail.share(Phase::Queue)),
            pct(p.tail.share(Phase::Prefill)),
            pct(p.tail.share(Phase::Decode)),
            pct(p.tail.share(Phase::Stall)),
            pct(p.overall.share(Phase::Stall)),
        ]);
    }
    result.table(
        "Where did the tail go: phase shares of the slowest 5% (ReAct/HotpotQA)",
        phase_table,
    );
    let first = observed.first().expect("sweep has points");
    let last = observed.last().expect("sweep has points");
    result.check(
        "tail-shifts-from-decode-to-interference",
        last.tail.share(Phase::Stall) > first.tail.share(Phase::Stall) + 0.15
            && last.tail.share(Phase::Decode) < first.tail.share(Phase::Decode) - 0.15,
        format!(
            "tail stall share {:.0}% -> {:.0}% and decode share {:.0}% -> {:.0}% \
             from {} to {} QPS — past the knee the tail is admitted requests \
             stalled behind other requests' prefill bursts, not extra compute",
            first.tail.share(Phase::Stall) * 100.0,
            last.tail.share(Phase::Stall) * 100.0,
            first.tail.share(Phase::Decode) * 100.0,
            last.tail.share(Phase::Decode) * 100.0,
            first.qps,
            last.qps
        ),
    );
    let partition_ok = observed.iter().all(|p| {
        let shares = [
            p.tail.share(Phase::Queue),
            p.tail.share(Phase::Prefill),
            p.tail.share(Phase::Decode),
            p.tail.share(Phase::Transfer),
            p.tail.share(Phase::Stall),
        ];
        (shares.iter().sum::<f64>() - 1.0).abs() < 1e-9
    });
    result.check(
        "phase-shares-partition-tail-time",
        partition_ok,
        "queue+prefill+decode+transfer+stall shares sum to 1 at every load point".to_string(),
    );

    // The other two workloads need no span attribution: plain sweeps.
    for (name, workload) in [
        ("ShareGPT", ServingWorkload::Chatbot),
        ("ReAct/WebShop", agent_workload(Benchmark::WebShop)),
    ] {
        let points: &[f64] = if name == "ShareGPT" {
            &chatbot_points
        } else {
            &agent_points
        };
        let sweep = qps_sweep(
            &engine,
            &workload,
            points,
            scale.serving_requests,
            scale.seed,
        );
        let mut table = Table::with_columns(&["QPS", "tput", "p50 s", "p95 s"]);
        for p in &sweep {
            table.row(vec![
                format!("{:.2}", p.qps),
                format!("{:.2}", p.report.throughput()),
                format!("{:.1}", p.report.p50_s),
                format!("{:.1}", p.report.p95_s),
            ]);
        }
        result.table(&format!("{name} load sweep"), table);
        peaks.push((name, peak_throughput(&sweep)));
    }

    let peak = |name: &str| {
        peaks
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    };
    let chatbot = peak("ShareGPT");
    let hotpot = peak("ReAct/HotpotQA");
    let webshop = peak("ReAct/WebShop");
    result.note(format!(
        "Peak sustainable throughput: ShareGPT {chatbot:.1}, ReAct/HotpotQA {hotpot:.1}, \
         ReAct/WebShop {webshop:.1} QPS. Paper anchors: 6.4 / 2.6 / 1.2 QPS."
    ));
    result.check(
        "chatbot-sustains-more-load",
        chatbot > 1.3 * hotpot.max(webshop),
        format!("ShareGPT peak {chatbot:.1} vs agents {hotpot:.1}/{webshop:.1} QPS"),
    );
    result.check(
        "agents-within-paper-band",
        (1.2..5.0).contains(&hotpot),
        format!("ReAct/HotpotQA peak {hotpot:.1} QPS (paper: 2.6)"),
    );
    result.note(
        "The tail breakdown is the motivation for disaggregation (ext_disagg): \
         the overloaded tail is stall — admitted decodes blocked behind other \
         requests' prefill bursts — which a dedicated decode pool removes by \
         construction.",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 40,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
