//! Ablation: KV block size. vLLM defaults to 16-token blocks; smaller
//! blocks cache at finer granularity (more hits at segment boundaries)
//! but cost more metadata churn, larger blocks waste partial-block space.

use agentsim_agents::AgentKind;
use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_serving::SingleRequest;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};

const BLOCK_SIZES: [u32; 4] = [8, 16, 32, 64];

/// Sweeps the block size for ReAct/HotpotQA single requests.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ablation_block",
        "Ablation: KV block size vs prefix-cache effectiveness",
    );
    let mut table =
        Table::with_columns(&["Block size", "Hit rate", "Peak KV blocks", "Mean latency s"]);

    let mut rows = Vec::new();
    for block_size in BLOCK_SIZES {
        let mut engine = EngineConfig::a100_llama8b();
        engine.block_size = block_size;
        let outcomes = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(scale.seed)
            .engine_config(engine.clone())
            .run_batch(scale.samples);
        let n = outcomes.len() as f64;
        let hit = outcomes.iter().map(|o| o.kv_hit_rate).sum::<f64>() / n;
        let peak = outcomes.iter().map(|o| o.kv_peak_bytes).max().unwrap_or(0)
            / engine.kv_bytes_per_block();
        let lat = outcomes
            .iter()
            .map(|o| o.trace.e2e().as_secs_f64())
            .sum::<f64>()
            / n;
        table.row(vec![
            block_size.to_string(),
            format!("{hit:.3}"),
            peak.to_string(),
            format!("{lat:.1}"),
        ]);
        rows.push((block_size, hit, lat));
    }
    result.table("ReAct/HotpotQA across block sizes", table);

    let hit_of = |bs: u32| {
        rows.iter()
            .find(|(b, ..)| *b == bs)
            .map(|(_, h, _)| *h)
            .unwrap()
    };
    result.check(
        "finer-blocks-hit-no-worse",
        hit_of(8) >= hit_of(64) - 0.02,
        format!(
            "hit rate at 8-token blocks {:.3} vs 64-token blocks {:.3} (finer granularity \
             caches partial segments)",
            hit_of(8),
            hit_of(64)
        ),
    );
    result.check(
        "latency-is-insensitive",
        {
            let lats: Vec<f64> = rows.iter().map(|(_, _, l)| *l).collect();
            let max = lats.iter().fold(0.0f64, |a, &b| a.max(b));
            let min = lats.iter().fold(f64::MAX, |a, &b| a.min(b));
            (max - min) / max < 0.25
        },
        "block size is a memory-granularity knob, not a latency knob".into(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 8,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
