//! Fig. 20: latency and accuracy vs number of few-shot examples.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{accuracy_of, mean_latency_s, single_batch_with};

const FEWSHOTS: [u32; 7] = [0, 1, 2, 4, 6, 8, 12];

/// Sweeps the few-shot example count for ReAct on HotpotQA.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig20",
        "Latency and accuracy vs few-shot example count (Fig. 20)",
    );
    let mut table = Table::with_columns(&["Few-shot", "Accuracy", "Avg latency s", "Acc/latency"]);

    let mut series = Vec::new();
    for n in FEWSHOTS {
        let outcomes = single_batch_with(
            AgentKind::React,
            Benchmark::HotpotQa,
            scale,
            EngineConfig::a100_llama8b(),
            AgentConfig::default_8b().with_fewshot(n),
        );
        let acc = accuracy_of(&outcomes);
        let lat = mean_latency_s(&outcomes);
        table.row(vec![
            n.to_string(),
            format!("{acc:.2}"),
            format!("{lat:.1}"),
            format!("{:.4}", acc / lat.max(1e-9)),
        ]);
        series.push((n, acc, lat));
    }
    result.table("ReAct/HotpotQA few-shot sweep", table);

    let by_n = |n: u32| series.iter().find(|(x, ..)| *x == n).copied().unwrap();
    let (_, acc0, lat0) = by_n(0);
    let (_, acc4, lat4) = by_n(4);
    let (_, acc12, _) = by_n(12);
    let best_acc = series.iter().map(|(_, a, _)| *a).fold(0.0, f64::max);

    result.check(
        "examples-help-initially",
        acc4 > acc0 + 0.04,
        format!("accuracy {acc0:.2} @ 0-shot -> {acc4:.2} @ 4-shot"),
    );
    result.check(
        "good-examples-cut-latency",
        lat4 < lat0,
        format!(
            "latency {lat0:.1}s @ 0-shot -> {lat4:.1}s @ 4-shot (fewer reasoning steps \
             outweigh the longer prompt)"
        ),
    );
    result.check(
        "excessive-prompting-regresses",
        acc12 < best_acc + 1e-9 && acc12 <= acc4 + 0.04,
        format!("accuracy {acc12:.2} @ 12-shot vs best {best_acc:.2} (diminishing/declining)"),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 25,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
