//! Fig. 11: total LLM inference latency with and without prefix caching.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{agents_for, mean_of, single_batch_with};

/// Measures per-request LLM time (prefill + decode) ± prefix caching.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig11",
        "LLM inference latency with and without prefix caching (Fig. 11)",
    );
    let mut table = Table::with_columns(&[
        "Benchmark",
        "Agent",
        "LLM s (off)",
        "LLM s (on)",
        "Reduction",
    ]);

    let mut agent_reductions = Vec::new();
    let mut cot_reduction = 0.0f64;
    for benchmark in Benchmark::AGENTIC {
        for agent in agents_for(benchmark) {
            let llm_time = |caching: bool| {
                let engine = EngineConfig::a100_llama8b().with_prefix_caching(caching);
                let outcomes =
                    single_batch_with(agent, benchmark, scale, engine, AgentConfig::default_8b());
                mean_of(&outcomes, |o| {
                    (o.trace.prefill_time() + o.trace.decode_time()).as_secs_f64()
                })
            };
            let off = llm_time(false);
            let on = llm_time(true);
            let reduction = if off > 0.0 { 1.0 - on / off } else { 0.0 };
            table.row(vec![
                benchmark.to_string(),
                agent.to_string(),
                format!("{off:.2}"),
                format!("{on:.2}"),
                format!("{:.1}%", reduction * 100.0),
            ]);
            if agent == AgentKind::Cot {
                cot_reduction = cot_reduction.max(reduction);
            } else {
                agent_reductions.push(reduction);
            }
        }
    }
    result.table("Per-request LLM inference time", table);

    let mean_agent = agent_reductions.iter().sum::<f64>() / agent_reductions.len() as f64;
    result.check(
        "modest-e2e-gain-for-agents",
        (0.03..0.45).contains(&mean_agent),
        format!(
            "mean agent LLM-latency reduction {:.1}% (paper: 15.7% — modest because \
             decode dominates and is not cacheable)",
            mean_agent * 100.0
        ),
    );
    result.check(
        "cot-gains-least",
        cot_reduction < mean_agent,
        format!(
            "CoT reduction {:.1}% vs agent mean {:.1}% (paper: CoT has no prefix reuse)",
            cot_reduction * 100.0,
            mean_agent * 100.0
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 6,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
