//! Extension: KV offload to host DRAM and NVMe with invocation-distance
//! eviction. The paper's KV sections (Figs. 12, 16, 17) show agentic
//! contexts outgrowing HBM and thrashing the prefix cache; the serving
//! fix every production stack reaches for is a memory hierarchy — spill
//! cold KV down to host DRAM, overflow to NVMe, and restore it over the
//! PCIe/NVMe links instead of recomputing prefill. Agent serving makes
//! the hierarchy unusually effective because eviction does not have to
//! guess: the session layer *knows* when a context returns — a tool
//! call's completion time, a closed-loop user's think time — so the
//! cache can rank victims by predicted next-invocation distance (an
//! approximation of Belady's OPT) instead of recency.
//!
//! This experiment sweeps concurrent closed-loop multi-turn users on an
//! HBM-constrained fleet, with each user's conversation carried across
//! turns (turn N+1 re-submits turn N's full context as its prefix), and
//! measures how many users the fleet sustains before TTFT p95 crosses
//! an SLO — at iso-HBM — under three arms: no offload, offload with LRU
//! eviction, and offload with invocation-distance eviction.

use agentsim_kvcache::EvictionPolicy;
use agentsim_llm::OffloadConfig;
use agentsim_metrics::Table;
use agentsim_serving::{ClientModel, FleetConfig, FleetReport, FleetSim, Routing};
use agentsim_simkit::SimDuration;

use crate::figure::{FigureResult, Scale};

/// Fleet size: two replicas so session-affinity routing and per-replica
/// pool pressure are both in play.
const REPLICAS: u32 = 2;

/// HBM share granted to the KV pool: large enough that any single
/// carried context fits, small enough that concurrent users thrash it.
const KV_FRACTION: f64 = 0.25;

/// Closed-loop think time between a user's turns. Long enough that a
/// recency-ranked cache has evicted the context by the time it returns —
/// exactly the window the invocation-distance hint closes.
const THINK: SimDuration = SimDuration::from_secs(30);

/// Turns per user: each conversation carries four turns of context, so
/// late turns re-submit multi-thousand-token prefixes.
const TURNS_PER_USER: u64 = 4;

/// TTFT p95 service-level objective defining "capacity": the largest
/// swept concurrency whose p95 stays at or under this is the arm's
/// supported user count.
const TTFT_SLO_S: f64 = 1.0;

/// Concurrent-user sweep. The no-offload arm crosses the SLO in the
/// middle of this range; the offload arms near or past the end.
const USERS: [u32; 6] = [4, 8, 12, 16, 20, 24];

/// Offload tiers in KV blocks (iso-HBM across arms: only the tiers and
/// their links are added, never more HBM).
fn tiers(policy: EvictionPolicy) -> OffloadConfig {
    OffloadConfig::tiers(4096, 16384).with_policy(policy)
}

fn arm_config(scale: &Scale, users: u32, offload: Option<OffloadConfig>) -> FleetConfig {
    let turns = users as u64 * TURNS_PER_USER;
    let mut config = FleetConfig::react_hotpotqa(REPLICAS, Routing::SessionAffinity, 2.0, turns)
        .seed(scale.seed)
        .client(ClientModel::ClosedLoop {
            concurrency: users,
            think_time: THINK,
        })
        .with_context_carry()
        .map_engines(|e| e.with_kv_fraction(KV_FRACTION));
    if let Some(off) = offload {
        config = config.map_engines(|e| e.with_offload(off.clone()));
    }
    config
}

fn run_arm(scale: &Scale, users: u32, offload: Option<OffloadConfig>) -> FleetReport {
    FleetSim::new(arm_config(scale, users, offload)).run()
}

/// Largest swept concurrency whose TTFT p95 meets the SLO, scanning from
/// the top so a non-monotonic blip below capacity cannot inflate it.
fn capacity(points: &[(u32, FleetReport)]) -> u32 {
    points
        .iter()
        .rev()
        .find(|(_, r)| r.ttft_p95_s <= TTFT_SLO_S)
        .map(|(u, _)| *u)
        .unwrap_or(0)
}

/// Sweeps concurrent closed-loop users across the three arms and compares
/// supported capacity at the TTFT SLO, at iso-HBM.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_kv_offload",
        "Extension: KV offload (HBM→host→NVMe) with invocation-distance eviction",
    );
    let arms: [(&str, Option<OffloadConfig>); 3] = [
        ("no-offload", None),
        ("offload-lru", Some(tiers(EvictionPolicy::Lru))),
        (
            "offload-distance",
            Some(tiers(EvictionPolicy::InvocationDistance)),
        ),
    ];
    let mut table = Table::with_columns(&[
        "users",
        "arm",
        "ttft p95 s",
        "kv hit",
        "p95 s",
        "demoted",
        "promoted tok",
    ]);
    let mut sweeps: Vec<Vec<(u32, FleetReport)>> = vec![Vec::new(); arms.len()];
    for &users in &USERS {
        for (i, (name, offload)) in arms.iter().enumerate() {
            let report = run_arm(scale, users, offload.clone());
            table.row(vec![
                format!("{users}"),
                name.to_string(),
                format!("{:.3}", report.ttft_p95_s),
                format!("{:.3}", report.kv_hit_rate),
                format!("{:.2}", report.p95_s),
                format!("{}", report.offload_demoted_blocks),
                format!("{}", report.offload_promoted_tokens),
            ]);
            sweeps[i].push((users, report));
        }
    }
    result.table(
        &format!(
            "ReAct/HotpotQA, {REPLICAS} replicas at {:.0}% KV fraction (iso-HBM), \
             closed-loop users with {:.0}s think time, {TURNS_PER_USER} carried \
             turns per conversation; capacity = most users with TTFT p95 ≤ {TTFT_SLO_S}s",
            KV_FRACTION * 100.0,
            THINK.as_secs_f64(),
        ),
        table,
    );

    let plain_cap = capacity(&sweeps[0]);
    let lru_cap = capacity(&sweeps[1]);
    let dist_cap = capacity(&sweeps[2]);
    let edge = USERS[USERS.len() - 1];
    let plain_edge = &sweeps[0].last().expect("non-empty sweep").1;
    let lru_edge = &sweeps[1].last().expect("non-empty sweep").1;
    let dist_edge = &sweeps[2].last().expect("non-empty sweep").1;

    result.check(
        "offload-extends-user-capacity-1p5x-at-iso-hbm",
        plain_cap > 0 && dist_cap as f64 >= 1.5 * plain_cap as f64,
        format!(
            "capacity at TTFT p95 ≤ {TTFT_SLO_S}s: no-offload {plain_cap} users, \
             offload-distance {dist_cap} users ({:.1}×) — same HBM, the extra \
             users live in host DRAM and NVMe",
            dist_cap as f64 / plain_cap as f64
        ),
    );
    result.check(
        "distance-hints-beat-blind-lru-at-the-edge",
        dist_cap >= lru_cap && dist_edge.ttft_p95_s < lru_edge.ttft_p95_s,
        format!(
            "at {edge} users: distance TTFT p95 {:.3}s vs LRU {:.3}s (capacity \
             {dist_cap} vs {lru_cap}) — knowing when a context returns beats \
             guessing from recency",
            dist_edge.ttft_p95_s, lru_edge.ttft_p95_s
        ),
    );
    result.check(
        "tiers-absorb-the-thrash",
        dist_edge.offload_demoted_blocks > 0
            && dist_edge.offload_promoted_tokens > 0
            && dist_edge.kv_hit_rate > plain_edge.kv_hit_rate,
        format!(
            "at {edge} users the distance arm demoted {} blocks, restored {} \
             tokens without recompute, and held a {:.3} hit rate vs {:.3} bare",
            dist_edge.offload_demoted_blocks,
            dist_edge.offload_promoted_tokens,
            dist_edge.kv_hit_rate,
            plain_edge.kv_hit_rate
        ),
    );
    result.check(
        "offload-never-changes-what-completes",
        sweeps[1]
            .iter()
            .chain(sweeps[2].iter())
            .zip(sweeps[0].iter().chain(sweeps[0].iter()))
            .all(|((_, tiered), (_, plain))| tiered.completed == plain.completed),
        "the hierarchy trades recompute for transfers; every turn still finishes".to_string(),
    );

    // Degenerate tiers: zero capacity in both must reproduce the
    // no-offload arm bit for bit (the hierarchy retains nothing and
    // records no transfers).
    let mid = USERS[USERS.len() / 2];
    let plain_mid = sweeps[0]
        .iter()
        .find(|(u, _)| *u == mid)
        .map(|(_, r)| r)
        .expect("mid point swept");
    let zero = run_arm(scale, mid, Some(OffloadConfig::tiers(0, 0)));
    result.check(
        "zero-capacity-tiers-recover-the-no-offload-run",
        zero.ttft_p95_s.to_bits() == plain_mid.ttft_p95_s.to_bits()
            && zero.p95_s.to_bits() == plain_mid.p95_s.to_bits()
            && zero.kv_hit_rate.to_bits() == plain_mid.kv_hit_rate.to_bits()
            && zero.offload_demoted_blocks == 0
            && zero.offload_host_bytes == 0,
        format!(
            "tiers(0, 0) at {mid} users: TTFT p95 bits {:016x} match no-offload",
            zero.ttft_p95_s.to_bits()
        ),
    );

    // Determinism at the capacity edge: demote/promote traffic, link
    // queueing, and hint-driven eviction replay bit-identically run over
    // run and across worker threads.
    let again = run_arm(scale, edge, Some(tiers(EvictionPolicy::InvocationDistance)));
    let threaded = FleetSim::new(
        arm_config(scale, edge, Some(tiers(EvictionPolicy::InvocationDistance))).threads(2),
    )
    .run();
    result.check(
        "offload-path-is-bit-deterministic",
        dist_edge.ttft_p95_s.to_bits() == again.ttft_p95_s.to_bits()
            && dist_edge.ttft_p95_s.to_bits() == threaded.ttft_p95_s.to_bits()
            && dist_edge.kv_hit_rate.to_bits() == threaded.kv_hit_rate.to_bits()
            && dist_edge.offload_demoted_blocks == threaded.offload_demoted_blocks
            && dist_edge.offload_promoted_tokens == threaded.offload_promoted_tokens,
        format!(
            "TTFT p95 bits {:016x}: sequential rerun and threads(2) reproduce \
             the edge-point report exactly",
            dist_edge.ttft_p95_s.to_bits()
        ),
    );

    // Promotion overlap: price each restore as a chunked train pipelined
    // against the admitting prefill (the same layer-wise model the
    // disaggregated driver uses for migrations) instead of one serial
    // transfer stalling ahead of it. The admission toll shrinks to the
    // non-overlapped residual.
    let dist_mid = sweeps[2]
        .iter()
        .find(|(u, _)| *u == mid)
        .map(|(_, r)| r)
        .expect("mid point swept");
    let chunked = run_arm(
        scale,
        mid,
        Some(tiers(EvictionPolicy::InvocationDistance).with_transfer_chunks(32)),
    );
    result.check(
        "chunked-promotions-overlap-the-restore-stall",
        chunked.completed == dist_mid.completed
            && chunked.offload_promoted_tokens > 0
            && chunked.ttft_p95_s < dist_mid.ttft_p95_s,
        format!(
            "at {mid} users, pricing restores as 32-chunk trains overlapped \
             with the admitting prefill cuts TTFT p95 from {:.4}s to {:.4}s \
             ({} tokens still restored without recompute) — the serial arm \
             pays the whole PCIe trip before the first token, the chunked arm \
             only the residual past the prefill window",
            dist_mid.ttft_p95_s, chunked.ttft_p95_s, chunked.offload_promoted_tokens
        ),
    );

    result.note(format!(
        "At iso-HBM the bare fleet supports {plain_cap} concurrent multi-turn \
         users before TTFT p95 crosses {TTFT_SLO_S}s: every context that falls \
         out of the {:.0}% pool is re-prefilled from scratch after the user's \
         think time. Spilling evictions to host DRAM and NVMe lifts capacity to \
         {lru_cap} users under LRU and {dist_cap} under invocation-distance \
         eviction ({:.1}×), because the session layer tells the cache when each \
         context returns — tool-call wake times and closed-loop think times — \
         so the blocks still resident when a user comes back are the ones that \
         were about to be needed, not merely the ones touched last.",
        KV_FRACTION * 100.0,
        dist_cap as f64 / plain_cap.max(1) as f64,
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let r = run(&Scale::quick());
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
