//! Fig. 10: breakdown of LLM inference latency into prefill and decode,
//! with and without prefix caching.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{agents_for, mean_of, single_batch_with};

/// Measures prefill/decode time per request, ± prefix caching.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig10",
        "Prefill/decode latency breakdown with and without prefix caching (Fig. 10)",
    );
    let mut table = Table::with_columns(&[
        "Benchmark",
        "Agent",
        "Prefill s (off)",
        "Prefill s (on)",
        "Decode s",
        "Prefill cut",
    ]);

    let mut agent_cuts = Vec::new();
    let mut cot_prefill_share = 0.0f64;
    for benchmark in Benchmark::AGENTIC {
        for agent in agents_for(benchmark) {
            let on = single_batch_with(
                agent,
                benchmark,
                scale,
                EngineConfig::a100_llama8b(),
                AgentConfig::default_8b(),
            );
            let off = single_batch_with(
                agent,
                benchmark,
                scale,
                EngineConfig::a100_llama8b().with_prefix_caching(false),
                AgentConfig::default_8b(),
            );
            let prefill_on = mean_of(&on, |o| o.trace.prefill_time().as_secs_f64());
            let prefill_off = mean_of(&off, |o| o.trace.prefill_time().as_secs_f64());
            let decode = mean_of(&on, |o| o.trace.decode_time().as_secs_f64());
            let cut = if prefill_off > 0.0 {
                1.0 - prefill_on / prefill_off
            } else {
                0.0
            };
            table.row(vec![
                benchmark.to_string(),
                agent.to_string(),
                format!("{prefill_off:.2}"),
                format!("{prefill_on:.2}"),
                format!("{decode:.2}"),
                format!("{:.0}%", cut * 100.0),
            ]);
            if agent == AgentKind::Cot {
                cot_prefill_share = cot_prefill_share.max(prefill_on / (prefill_on + decode));
            } else {
                agent_cuts.push(cut);
            }
        }
    }
    result.table("Prefill vs decode time per request", table);

    let mean_cut = agent_cuts.iter().sum::<f64>() / agent_cuts.len() as f64;
    result.check(
        "caching-cuts-agent-prefill",
        mean_cut > 0.35,
        format!(
            "mean agent prefill reduction {:.0}% (paper: 58.6%)",
            mean_cut * 100.0
        ),
    );
    result.check(
        "cot-is-decode-dominated",
        cot_prefill_share < 0.15,
        format!(
            "CoT prefill share {:.0}% of LLM time (paper: decoding dominates CoT)",
            cot_prefill_share * 100.0
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 6,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
