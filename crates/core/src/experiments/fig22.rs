//! Fig. 22: accuracy-cost trade-offs under test-time scaling across model
//! sizes (Llama-3.1 8B vs 70B) on HotpotQA.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{accuracy_of, mean_latency_s, mean_of, single_batch_with};

/// One measured scaling point.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Label (agent + scaling level + model).
    pub label: String,
    /// Task accuracy.
    pub accuracy: f64,
    /// Mean end-to-end latency, seconds.
    pub latency_s: f64,
    /// Mean total tokens (input + output) per request.
    pub tokens: f64,
    /// Mean GPU energy per request, watt-hours.
    pub energy_wh: f64,
}

/// Measures Reflexion (sequential) and LATS (parallel) scaling ladders on
/// both model sizes. Shared with `table3`.
pub fn scaling_points(scale: &Scale) -> Vec<(AgentKind, &'static str, ScalingPoint)> {
    let mut out = Vec::new();
    for (model_name, engine, base) in [
        (
            "8B",
            EngineConfig::a100_llama8b(),
            AgentConfig::default_8b(),
        ),
        (
            "70B",
            EngineConfig::a100x8_llama70b(),
            AgentConfig::default_70b(),
        ),
    ] {
        for trials in [1u32, 2, 4, 6] {
            let cfg = base.with_max_trials(trials).with_max_iterations(10);
            let outcomes = single_batch_with(
                AgentKind::Reflexion,
                Benchmark::HotpotQa,
                scale,
                engine.clone(),
                cfg,
            );
            out.push((
                AgentKind::Reflexion,
                model_name,
                point(format!("Reflexion t={trials} {model_name}"), &outcomes),
            ));
        }
        for children in [2u32, 5, 8] {
            let cfg = base.with_lats_children(children).with_lats_iterations(10);
            let outcomes = single_batch_with(
                AgentKind::Lats,
                Benchmark::HotpotQa,
                scale,
                engine.clone(),
                cfg,
            );
            out.push((
                AgentKind::Lats,
                model_name,
                point(format!("LATS c={children} {model_name}"), &outcomes),
            ));
        }
    }
    out
}

fn point(label: String, outcomes: &[agentsim_serving::SingleOutcome]) -> ScalingPoint {
    ScalingPoint {
        label,
        accuracy: accuracy_of(outcomes),
        latency_s: mean_latency_s(outcomes),
        tokens: mean_of(outcomes, |o| {
            (o.trace.input_tokens() + o.trace.output_tokens()) as f64
        }),
        energy_wh: mean_of(outcomes, |o| o.energy_wh),
    }
}

/// Runs the model-size study.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig22",
        "Test-time scaling across model sizes, 8B vs 70B (Fig. 22)",
    );
    let points = scaling_points(scale);
    let mut table = Table::with_columns(&["Point", "Accuracy", "Latency s", "Tokens", "Energy Wh"]);
    for (_, _, p) in &points {
        table.row(vec![
            p.label.clone(),
            format!("{:.2}", p.accuracy),
            format!("{:.1}", p.latency_s),
            format!("{:.0}", p.tokens),
            format!("{:.2}", p.energy_wh),
        ]);
    }
    result.table(
        "Scaling ladders on HotpotQA (latency / tokens / energy)",
        table,
    );

    let best = |kind: AgentKind, model: &str| -> ScalingPoint {
        points
            .iter()
            .filter(|(k, m, _)| *k == kind && *m == model)
            .map(|(_, _, p)| p.clone())
            .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).expect("finite"))
            .expect("points exist")
    };
    let reflexion_8b = best(AgentKind::Reflexion, "8B");
    let reflexion_70b = best(AgentKind::Reflexion, "70B");
    let lats_8b = best(AgentKind::Lats, "8B");
    let lats_70b = best(AgentKind::Lats, "70B");

    result.check(
        "bigger-model-more-accurate-per-strategy",
        reflexion_70b.accuracy > reflexion_8b.accuracy
            && lats_70b.accuracy >= lats_8b.accuracy - 0.05,
        format!(
            "Reflexion: 8B {:.2} vs 70B {:.2}; LATS: 8B {:.2} vs 70B {:.2} \
             (paper: 38/67 and 80/82)",
            reflexion_8b.accuracy, reflexion_70b.accuracy, lats_8b.accuracy, lats_70b.accuracy
        ),
    );
    result.check(
        "parallel-scaling-closes-the-model-gap",
        lats_8b.accuracy > reflexion_70b.accuracy - 0.08,
        format!(
            "LATS/8B {:.2} approaches Reflexion/70B {:.2} (paper: 8B + parallel scaling \
             nears 70B performance)",
            lats_8b.accuracy, reflexion_70b.accuracy
        ),
    );
    result.check(
        "small-model-is-more-energy-efficient",
        lats_8b.energy_wh < lats_70b.energy_wh && reflexion_8b.energy_wh < reflexion_70b.energy_wh,
        format!(
            "energy: LATS 8B {:.1} vs 70B {:.1} Wh; Reflexion 8B {:.1} vs 70B {:.1} Wh \
             (one GPU vs eight)",
            lats_8b.energy_wh, lats_70b.energy_wh, reflexion_8b.energy_wh, reflexion_70b.energy_wh
        ),
    );
    result.check(
        "small-model-needs-more-tokens",
        lats_8b.tokens > 0.8 * lats_70b.tokens,
        format!(
            "tokens at max accuracy: LATS 8B {:.0} vs 70B {:.0} (paper: 8B consumes more \
             tokens to reach parity)",
            lats_8b.tokens, lats_70b.tokens
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 20,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
