//! §IV-C: importance of concurrent request scheduling — sequential vs
//! concurrent execution of ReAct agents.

use agentsim_agents::AgentKind;
use agentsim_metrics::Table;
use agentsim_serving::{ServingConfig, ServingSim, ServingWorkload, SingleRequest};
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};

/// Measures the throughput gain from concurrent execution.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "concurrency",
        "Sequential vs concurrent agent execution (Sec. IV-C)",
    );
    let mut table = Table::with_columns(&[
        "Benchmark",
        "Seq latency s",
        "Seq QPS",
        "Conc QPS",
        "Gain",
        "Conc latency s",
    ]);

    let mut gains = Vec::new();
    for benchmark in [Benchmark::HotpotQa, Benchmark::WebShop] {
        // Sequential: requests one after another — throughput is the
        // reciprocal of mean single-request latency.
        let singles = SingleRequest::new(AgentKind::React, benchmark)
            .seed(scale.seed)
            .run_batch(scale.samples);
        let seq_latency: f64 = singles
            .iter()
            .map(|o| o.trace.e2e().as_secs_f64())
            .sum::<f64>()
            / singles.len() as f64;
        let seq_qps = 1.0 / seq_latency;

        // Concurrent: open-loop at an offered load near saturation.
        let workload = ServingWorkload::Agent {
            kind: AgentKind::React,
            benchmark,
            config: agentsim_agents::AgentConfig::default_8b(),
        };
        let report = ServingSim::new(
            ServingConfig::new(workload, 4.0, scale.serving_requests).seed(scale.seed),
        )
        .run();
        let conc_qps = report.throughput();
        let gain = conc_qps / seq_qps;
        gains.push((benchmark, gain));
        table.row(vec![
            benchmark.to_string(),
            format!("{seq_latency:.1}"),
            format!("{seq_qps:.2}"),
            format!("{conc_qps:.2}"),
            format!("{gain:.1}x"),
            format!("{:.1}", report.p50_s),
        ]);
    }
    result.table("Sequential vs concurrent ReAct serving", table);

    let hotpot_gain = gains
        .iter()
        .find(|(b, _)| *b == Benchmark::HotpotQa)
        .map(|(_, g)| *g)
        .unwrap_or(0.0);
    let webshop_gain = gains
        .iter()
        .find(|(b, _)| *b == Benchmark::WebShop)
        .map(|(_, g)| *g)
        .unwrap_or(0.0);
    result.check(
        "concurrency-multiplies-throughput",
        hotpot_gain > 4.0 && webshop_gain > 2.0,
        format!(
            "gains: HotpotQA {hotpot_gain:.1}x, WebShop {webshop_gain:.1}x (paper: 25x and 6.2x)"
        ),
    );
    result.check(
        "idle-tools-give-hotpotqa-more-headroom",
        hotpot_gain > webshop_gain,
        format!(
            "HotpotQA gains more ({hotpot_gain:.1}x vs {webshop_gain:.1}x) because slow \
             Wikipedia calls leave idle GPU cycles to fill"
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 8,
            serving_requests: 40,
            seed: 7,
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
