//! Fig. 12: average GPU memory requirement for KV cache per request,
//! with and without prefix caching.

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{agents_for, mean_of, single_batch_with};

const GIB: f64 = (1u64 << 30) as f64;

/// Measures per-request peak KV bytes ± prefix caching.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig12",
        "GPU memory for KV cache per request, with and without prefix caching (Fig. 12)",
    );
    let mut table =
        Table::with_columns(&["Benchmark", "Agent", "KV GiB (off)", "KV GiB (on)", "Saved"]);

    let mut cot_kv = 0.0f64;
    let mut agent_kv_sum = 0.0;
    let mut agent_cells = 0.0;
    let mut lats_saving = 0.0;
    for benchmark in Benchmark::AGENTIC {
        for agent in agents_for(benchmark) {
            let peak_kv = |caching: bool| {
                let engine = EngineConfig::a100_llama8b().with_prefix_caching(caching);
                let outcomes =
                    single_batch_with(agent, benchmark, scale, engine, AgentConfig::default_8b());
                mean_of(&outcomes, |o| o.kv_peak_bytes as f64)
            };
            let off = peak_kv(false);
            let on = peak_kv(true);
            let saved = if off > 0.0 { 1.0 - on / off } else { 0.0 };
            table.row(vec![
                benchmark.to_string(),
                agent.to_string(),
                format!("{:.3}", off / GIB),
                format!("{:.3}", on / GIB),
                format!("{:.0}%", saved * 100.0),
            ]);
            if agent == AgentKind::Cot {
                cot_kv = cot_kv.max(on);
            } else {
                agent_kv_sum += on;
                agent_cells += 1.0;
            }
            if agent == AgentKind::Lats && benchmark == Benchmark::HotpotQa {
                lats_saving = saved;
            }
        }
    }
    result.table("Peak KV-cache bytes per request", table);

    let agent_mean = agent_kv_sum / agent_cells;
    result.check(
        "agents-use-several-times-cots-kv",
        agent_mean > 1.5 * cot_kv,
        format!(
            "agents average {:.2} GiB vs CoT {:.2} GiB, {:.1}x (paper: 3.0x avg, 5.4x worst)",
            agent_mean / GIB,
            cot_kv / GIB,
            agent_mean / cot_kv.max(1.0)
        ),
    );
    result.check(
        "lats-parallel-sharing-saves-memory",
        lats_saving > 0.25,
        format!(
            "LATS KV saved by prefix caching: {:.0}% (paper: 64.8% — parallel \
             children share the parent's prefix blocks)",
            lats_saving * 100.0
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 6,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
