//! Extension: disaggregated prefill/decode serving as a what-if against
//! the colocated baseline, at iso-GPU count.
//!
//! The paper shows agentic traffic is prefill-heavy — every ReAct
//! iteration re-reads the growing history (its Figs. 9–10) — and that
//! tail latency collapses once prefill bursts share a replica with
//! decode (Fig. 14). Splitwise-style disaggregation is the
//! infrastructure response: dedicate a pool to prefill, migrate each
//! request's KV blocks over an interconnect at its first token, decode
//! on an isolated pool. This experiment prices that trade on the
//! paper's workload: decode-side TPOT p99 improves (prefill
//! interference is gone by construction), TTFT pays a KV-transfer toll
//! that grows as the link slows, and the transfer is an explicit phase
//! that sums exactly into end-to-end latency.

use agentsim_gpu::LinkSpec;
use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_serving::{DisaggConfig, DisaggReport, DisaggSim, DisaggWorkload};

use crate::figure::{FigureResult, Scale};

/// TTFT SLO for goodput accounting (seconds).
const TTFT_SLO_S: f64 = 2.0;
/// TPOT SLO for goodput accounting (seconds per token).
const TPOT_SLO_S: f64 = 0.02;

fn phase(report: &DisaggReport, name: &str) -> f64 {
    report
        .phase_totals()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| *s)
        .expect("known phase")
}

fn row(table: &mut Table, topo: &str, qps: f64, report: &DisaggReport) {
    let mut ttft = report.ttft();
    let mut tpot = report.tpot();
    table.row(vec![
        format!("{qps:.2}"),
        topo.to_string(),
        format!("{:.2}", report.throughput()),
        format!("{:.3}", ttft.try_p95().unwrap_or(f64::NAN)),
        format!("{:.1}", tpot.try_percentile(99.0).unwrap_or(f64::NAN) * 1e3),
        format!("{:.2}", report.goodput(TTFT_SLO_S, TPOT_SLO_S)),
        format!("{:.1}", report.p95_s),
        format!("{}", report.migrated_calls),
    ]);
}

/// Compares colocated vs disaggregated serving at iso-GPU count, then
/// prices the interconnect and exercises the 70B tensor-parallel preset.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_disagg",
        "Extension: disaggregated prefill/decode serving vs colocated, iso-GPU",
    );
    let n = scale.serving_requests;
    let workload = DisaggWorkload::react_hotpotqa;

    // Panel 1: QPS sweep, 2 colocated replicas vs 1 prefill + 1 decode.
    let qps_points = [0.5, 1.0, 2.0, 3.0];
    let mut table = Table::with_columns(&[
        "QPS",
        "topology",
        "tput",
        "ttft p95 s",
        "tpot p99 ms",
        "goodput",
        "p95 s",
        "migrations",
    ]);
    let mut sweep = Vec::new();
    for &qps in &qps_points {
        let colocated =
            DisaggSim::new(DisaggConfig::colocated(workload(), 2, qps, n).seed(scale.seed)).run();
        let disagg = DisaggSim::new(DisaggConfig::new(workload(), qps, n).seed(scale.seed)).run();
        row(&mut table, "colocated 2x", qps, &colocated);
        row(&mut table, "disagg 1P+1D", qps, &disagg);
        sweep.push((qps, colocated, disagg));
    }
    result.table(
        &format!("ReAct/HotpotQA, 2 GPUs either way, {n} requests, NVLink transfers"),
        table,
    );

    // The crossover claim: under prefill-heavy agentic load, the decode
    // pool's isolation shows up as a better inter-token tail.
    let (hi_qps, hi_colocated, hi_disagg) = sweep
        .iter()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("non-empty sweep");
    let colocated_tpot = {
        let mut t = hi_colocated.tpot();
        t.percentile(99.0)
    };
    let disagg_tpot = {
        let mut t = hi_disagg.tpot();
        t.percentile(99.0)
    };
    result.check(
        "disagg-improves-decode-tpot-tail",
        disagg_tpot < colocated_tpot,
        format!(
            "tpot p99 at {hi_qps} QPS: disagg {:.1} ms vs colocated {:.1} ms — \
             prefill bursts no longer stall running decodes",
            disagg_tpot * 1e3,
            colocated_tpot * 1e3
        ),
    );
    result.check(
        "decode-pool-isolation-eliminates-stall",
        phase(hi_disagg, "stall") == 0.0 && phase(hi_colocated, "stall") > 0.0,
        format!(
            "stall phase at {hi_qps} QPS: disagg {:.2} s vs colocated {:.2} s",
            phase(hi_disagg, "stall"),
            phase(hi_colocated, "stall")
        ),
    );
    let phases_total: f64 = hi_disagg.phase_totals().iter().map(|(_, s)| s).sum();
    let e2e_total: f64 = hi_disagg.calls.iter().map(|c| c.e2e().as_secs_f64()).sum();
    result.check(
        "transfer-phase-partitions-e2e-exactly",
        phase(hi_disagg, "transfer") > 0.0 && (phases_total - e2e_total).abs() < 1e-9,
        format!(
            "queue+prefill+transfer+decode+stall = {phases_total:.6} s vs \
             summed e2e {e2e_total:.6} s (transfer {:.3} s)",
            phase(hi_disagg, "transfer")
        ),
    );

    // Panel 2: the interconnect tax. Same load, links from free to slow.
    let link_qps = 1.0;
    let mut links_table =
        Table::with_columns(&["link", "ttft p95 s", "transfer s", "transfer wait s"]);
    let mut by_link = Vec::new();
    for link in [
        LinkSpec::zero_cost(),
        LinkSpec::nvlink4(),
        LinkSpec::rdma_400g(),
        LinkSpec::pcie_gen4(),
    ] {
        let name = link.name;
        let report = DisaggSim::new(
            DisaggConfig::new(workload(), link_qps, n)
                .seed(scale.seed)
                .link(link),
        )
        .run();
        let mut ttft = report.ttft();
        links_table.row(vec![
            name.to_string(),
            format!("{:.4}", ttft.try_p95().unwrap_or(f64::NAN)),
            format!("{:.3}", phase(&report, "transfer")),
            format!("{:.3}", report.transfer_wait.as_secs_f64()),
        ]);
        by_link.push((name, report));
    }
    result.table(
        &format!("KV-transfer link sensitivity at {link_qps} QPS (1P+1D)"),
        links_table,
    );
    let ttft_p95 = |name: &str| {
        let report = &by_link
            .iter()
            .find(|(n, _)| *n == name)
            .expect("link ran")
            .1;
        let mut t = report.ttft();
        t.p95()
    };
    result.check(
        "kv-transfer-taxes-ttft",
        ttft_p95("pcie_gen4") > ttft_p95("zero_cost"),
        format!(
            "ttft p95: pcie {:.4} s vs free link {:.4} s — the migration toll \
             lands on time-to-first-token",
            ttft_p95("pcie_gen4"),
            ttft_p95("zero_cost")
        ),
    );
    let transfer_secs = |name: &str| {
        phase(
            &by_link.iter().find(|(n, _)| *n == name).unwrap().1,
            "transfer",
        )
    };
    result.check(
        "slower-links-spend-longer-in-transfer",
        transfer_secs("pcie_gen4") > transfer_secs("nvlink4")
            && transfer_secs("nvlink4") >= transfer_secs("zero_cost"),
        format!(
            "transfer phase: pcie {:.3} s > nvlink {:.3} s >= free {:.3} s",
            transfer_secs("pcie_gen4"),
            transfer_secs("nvlink4"),
            transfer_secs("zero_cost")
        ),
    );

    // Panel 3: layer-wise pipelined transfers. The migration toll priced
    // in panel 2 is not irreducible — prefill produces KV layer by
    // layer, so completed layers can ship while the remaining layers
    // still compute. Crossover load over PCIe (where the toll is
    // visible): whole-footprint serial transfers vs 32-chunk trains.
    let pipe_chunks = 32;
    let pcie_cell = || {
        DisaggConfig::new(workload(), *hi_qps, n)
            .seed(scale.seed)
            .link(LinkSpec::pcie_gen4())
    };
    let serial = DisaggSim::new(pcie_cell()).run();
    let pipelined = DisaggSim::new(pcie_cell().transfer_chunks(pipe_chunks)).run();
    let mut pipe_table = Table::with_columns(&[
        "arm",
        "transfer s",
        "ttft p95 s",
        "wire chunks",
        "link util",
    ]);
    for (name, report) in [("serial", &serial), ("pipelined x32", &pipelined)] {
        let mut ttft = report.ttft();
        let chunks: u64 = report.links.iter().map(|l| l.chunks).sum();
        let util = report
            .links
            .iter()
            .map(|l| l.utilization)
            .fold(0.0_f64, f64::max);
        pipe_table.row(vec![
            name.to_string(),
            format!("{:.3}", phase(report, "transfer")),
            format!("{:.4}", ttft.try_p95().unwrap_or(f64::NAN)),
            format!("{chunks}"),
            format!("{util:.4}"),
        ]);
    }
    result.table(
        &format!("Layer-wise pipelined KV transfers at {hi_qps} QPS over PCIe (1P+1D)"),
        pipe_table,
    );
    result.check(
        "pipelining-shrinks-the-transfer-phase-25pct",
        phase(&serial, "transfer") > 0.0
            && phase(&pipelined, "transfer") <= 0.75 * phase(&serial, "transfer"),
        format!(
            "transfer phase at {hi_qps} QPS over PCIe: pipelined {:.3} s vs \
             serial {:.3} s ({:.0}% smaller) — shipped layers overlap the \
             layers still prefilling, so TTFT pays only the residual",
            phase(&pipelined, "transfer"),
            phase(&serial, "transfer"),
            (1.0 - phase(&pipelined, "transfer") / phase(&serial, "transfer")) * 100.0
        ),
    );
    let byte_drift = (pipelined.transferred_bytes as f64 - serial.transferred_bytes as f64).abs()
        / serial.transferred_bytes as f64;
    result.check(
        "pipelining-never-loses-a-call",
        pipelined.completed == serial.completed
            && pipelined.migrated_calls > 0
            && byte_drift < 0.10,
        format!(
            "both arms complete {} requests ({} vs {} migrations, {} vs {} \
             bytes, {:.1}% apart) — chunking changes when bytes move, not \
             what finishes; the drift is earlier arrivals shifting \
             prefix-cache state, not lost KV",
            serial.completed,
            serial.migrated_calls,
            pipelined.migrated_calls,
            serial.transferred_bytes,
            pipelined.transferred_bytes,
            byte_drift * 100.0
        ),
    );
    result.check(
        "chunk-trains-actually-ran",
        serial.links.iter().all(|l| l.chunks == l.transfers)
            && pipelined.links.iter().any(|l| l.chunks > l.transfers),
        format!(
            "wire chunks: serial {} over {} transfers, pipelined {} over {}",
            serial.links.iter().map(|l| l.chunks).sum::<u64>(),
            serial.links.iter().map(|l| l.transfers).sum::<u64>(),
            pipelined.links.iter().map(|l| l.chunks).sum::<u64>(),
            pipelined.links.iter().map(|l| l.transfers).sum::<u64>(),
        ),
    );

    // Panel 4: the 70B tensor-parallel preset, end to end. Fewer
    // requests — each 70B call is ~an order of magnitude slower.
    let n70 = (n / 4).max(6);
    let qps70 = 0.2;
    let engine70 = EngineConfig::a100x8_llama70b();
    let colocated70 = DisaggSim::new(
        DisaggConfig::colocated(workload(), 2, qps70, n70)
            .seed(scale.seed)
            .engine(engine70.clone()),
    )
    .run();
    let disagg70 = DisaggSim::new(
        DisaggConfig::new(workload(), qps70, n70)
            .seed(scale.seed)
            .engine(engine70),
    )
    .run();
    let mut table70 = Table::with_columns(&[
        "QPS",
        "topology",
        "tput",
        "ttft p95 s",
        "tpot p99 ms",
        "goodput",
        "p95 s",
        "migrations",
    ]);
    row(&mut table70, "colocated 2x", qps70, &colocated70);
    row(&mut table70, "disagg 1P+1D", qps70, &disagg70);
    result.table(
        &format!("Llama-70B on A100x8 nodes (tensor-parallel), {n70} requests"),
        table70,
    );
    let phases70: f64 = disagg70.phase_totals().iter().map(|(_, s)| s).sum();
    let e2e70: f64 = disagg70.calls.iter().map(|c| c.e2e().as_secs_f64()).sum();
    result.check(
        "llama70b-disagg-serves-end-to-end",
        colocated70.completed == n70
            && disagg70.completed == n70
            && disagg70.migrated_calls > 0
            && (phases70 - e2e70).abs() < 1e-9,
        format!(
            "70B: {} + {} sessions completed, {} migrations, phase partition \
             residual {:.1e}",
            colocated70.completed,
            disagg70.completed,
            disagg70.migrated_calls,
            (phases70 - e2e70).abs()
        ),
    );

    result.note(format!(
        "Iso-GPU crossover on prefill-heavy agentic load: disaggregation buys \
         its decode-tail win (tpot p99 {:.1} -> {:.1} ms at {hi_qps} QPS) by \
         paying for KV migration on TTFT; with NVLink the toll is microseconds, \
         with PCIe it is visible ({:.4} vs {:.4} s p95). Transfer time is a \
         first-class span phase, so the trade is directly auditable per call.",
        colocated_tpot * 1e3,
        disagg_tpot * 1e3,
        ttft_p95("pcie_gen4"),
        ttft_p95("zero_cost"),
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 24,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
