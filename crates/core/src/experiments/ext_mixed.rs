//! Extension: multi-tenant interference. The paper serves chatbot and
//! agent workloads separately; production replicas host both. How much
//! does co-locating agent traffic degrade chatbot QoS?

use agentsim_agents::{AgentConfig, AgentKind};
use agentsim_metrics::Table;
use agentsim_serving::{ServingConfig, ServingSim, ServingWorkload};
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};

/// Sweeps the agent share of a fixed-rate traffic mix.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_mixed",
        "Extension: chatbot QoS under co-located agent traffic",
    );
    let qps = 3.0;
    let mut table = Table::with_columns(&[
        "Agent share",
        "chatbot p50 s",
        "chatbot p95 s",
        "agent p50 s",
        "GPU util",
        "hit rate",
    ]);

    let mut rows = Vec::new();
    for agent_fraction in [0.0, 0.2, 0.5] {
        let workload = if agent_fraction == 0.0 {
            ServingWorkload::Chatbot
        } else {
            ServingWorkload::Mixed {
                agent_fraction,
                kind: AgentKind::React,
                benchmark: Benchmark::HotpotQa,
                config: AgentConfig::default_8b(),
            }
        };
        let mut report = ServingSim::new(
            ServingConfig::new(workload, qps, scale.serving_requests).seed(scale.seed),
        )
        .run();
        let (chat_p50, chat_p95) = if agent_fraction == 0.0 {
            (report.p50_s, report.p95_s)
        } else {
            (
                report.chatbot_latencies.try_median().unwrap_or(f64::NAN),
                report.chatbot_latencies.try_p95().unwrap_or(f64::NAN),
            )
        };
        let agent_p50 = if agent_fraction == 0.0 {
            0.0
        } else {
            report.agent_latencies.try_median().unwrap_or(f64::NAN)
        };
        table.row(vec![
            format!("{:.0}%", agent_fraction * 100.0),
            format!("{chat_p50:.1}"),
            format!("{chat_p95:.1}"),
            if agent_fraction == 0.0 {
                "-".to_string()
            } else {
                format!("{agent_p50:.1}")
            },
            format!("{:.2}", report.utilization),
            format!("{:.2}", report.kv_hit_rate),
        ]);
        rows.push((agent_fraction, chat_p50, chat_p95));
    }
    result.table(
        &format!("{qps} QPS total on one A100/8B replica, varying agent share"),
        table,
    );

    let at = |f: f64| rows.iter().find(|(x, ..)| *x == f).copied().unwrap();
    let (_, pure_p50, pure_p95) = at(0.0);
    let (_, mixed_p50, mixed_p95) = at(0.5);
    result.check(
        "agent-traffic-degrades-chatbot-qos",
        mixed_p95 > pure_p95 && mixed_p50 > pure_p50 * 0.9,
        format!(
            "chatbot p95 {pure_p95:.1}s alone vs {mixed_p95:.1}s with a 50% agent mix — \
             long agent contexts and repeated calls crowd the shared engine"
        ),
    );
    result.note(
        "This quantifies the paper's QoS warning (Key Takeaway #7) in a setting it \
         does not measure: single-replica multi-tenancy. Isolation (dedicated \
         replicas or agent-aware admission) is the implied remedy.",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 50,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
