//! Fig. 7: latency distribution of a chatbot (ShareGPT) workload vs a
//! ReAct agent, processing one request at a time with prefix caching.

use agentsim_metrics::{Histogram, Table};
use agentsim_serving::{ServingConfig, ServingSim, ServingWorkload};

use crate::figure::{FigureResult, Scale};

const TRICKLE_QPS: f64 = 0.02; // one request at a time

fn trickle(workload: ServingWorkload, scale: &Scale) -> agentsim_serving::ServingReport {
    ServingSim::new(
        ServingConfig::new(workload, TRICKLE_QPS, scale.serving_requests).seed(scale.seed),
    )
    .run()
}

/// Measures both latency distributions.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig07",
        "Latency distribution: ShareGPT chatbot vs ReAct agent (Fig. 7)",
    );
    let chatbot = trickle(ServingWorkload::Chatbot, scale);
    let agent = trickle(ServingWorkload::react_hotpotqa(), scale);

    let mut table = Table::with_columns(&["Workload", "p50 s", "p95 s", "max s", "p95-p50 s"]);
    for (name, r) in [("ShareGPT", &chatbot), ("ReAct/HotpotQA", &agent)] {
        table.row(vec![
            name.to_string(),
            format!("{:.1}", r.p50_s),
            format!("{:.1}", r.p95_s),
            format!("{:.1}", r.latencies.summary().max()),
            format!("{:.1}", r.p95_s - r.p50_s),
        ]);
    }
    result.table("Latency summary (one request at a time)", table);

    for (name, r) in [("ShareGPT", &chatbot), ("ReAct/HotpotQA", &agent)] {
        let mut hist = Histogram::new(0.0, 40.0, 20);
        for &v in r.latencies.values() {
            hist.record(v);
        }
        let mut t = Table::with_columns(&["bin start s", "bin end s", "count"]);
        for (lo, hi, c) in hist.iter().filter(|&(_, _, c)| c > 0) {
            t.row(vec![format!("{lo:.0}"), format!("{hi:.0}"), c.to_string()]);
        }
        result.table(&format!("{name} latency histogram"), t);
    }

    let chatbot_in_band = {
        let mut hist = Histogram::new(0.0, 40.0, 40);
        for &v in chatbot.latencies.values() {
            hist.record(v);
        }
        1.0 - hist.tail_fraction(9.0)
    };
    result.check(
        "chatbot-consistent",
        chatbot_in_band > 0.8,
        format!(
            "{:.0}% of chatbot responses complete within 9 s (paper: most in 3-7 s)",
            chatbot_in_band * 100.0
        ),
    );
    result.check(
        "agent-heavier-tail",
        agent.p95_s - agent.p50_s > 1.2 * (chatbot.p95_s - chatbot.p50_s),
        format!(
            "spread (p95-p50): agent {:.1} s vs chatbot {:.1} s",
            agent.p95_s - agent.p50_s,
            chatbot.p95_s - chatbot.p50_s
        ),
    );
    result.check(
        "agent-slower-overall",
        agent.p50_s > chatbot.p50_s,
        format!(
            "median latency: agent {:.1} s vs chatbot {:.1} s",
            agent.p50_s, chatbot.p50_s
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 25,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
