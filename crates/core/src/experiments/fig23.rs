//! Fig. 23: growth in ChatGPT weekly active users (public data series the
//! paper plots to motivate its traffic scenarios).

use agentsim_metrics::Table;

use crate::figure::{FigureResult, Scale};

/// `(month, year, weekly active users in millions, source)` — the public
/// milestones the paper cites (its references 31, 35, 36 and 39-41).
pub const WAU_SERIES: [(&str, u32, f64, &str); 6] = [
    ("Nov", 2022, 0.0, "launch"),
    ("Feb", 2023, 100.0, "Reuters: fastest-growing user base"),
    ("Aug", 2024, 200.0, "Reuters"),
    ("Dec", 2024, 300.0, "OpenAI Newsroom"),
    ("Feb", 2025, 400.0, "Reuters"),
    ("Apr", 2025, 500.0, "OpenAI funding update"),
];

/// Renders the adoption series.
pub fn run(_scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new("fig23", "ChatGPT weekly-active-user growth (Fig. 23)");
    let mut table = Table::with_columns(&["Date", "WAU (millions)", "Source"]);
    for (month, year, wau, source) in WAU_SERIES {
        table.row(vec![
            format!("{month} {year}"),
            format!("{wau:.0}"),
            source.to_string(),
        ]);
    }
    result.table("Public adoption milestones", table);

    let monotone = WAU_SERIES.windows(2).all(|w| w[1].2 >= w[0].2);
    result.check(
        "adoption-grows-monotonically",
        monotone,
        "user base only grows across the cited milestones".into(),
    );
    // Acceleration: the last 100M took ~2 months; the second 100M took ~18.
    let slow_phase_months = 18.0; // Feb 2023 -> Aug 2024 for +100M
    let fast_phase_months = 2.0; // Feb 2025 -> Apr 2025 for +100M
    result.check(
        "adoption-accelerates",
        fast_phase_months < slow_phase_months / 3.0,
        format!(
            "+100M users took ~{slow_phase_months:.0} months in 2023-24 vs \
             ~{fast_phase_months:.0} months in 2025 (paper: marked acceleration, \
             500M+ by April 2025)"
        ),
    );
    result.note(
        "The paper converts 500M WAU to ~71.4M queries/day (one query per daily \
         user) for its Table III projections.",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_complete_and_checked() {
        let r = run(&Scale::quick());
        assert!(r.all_checks_pass());
        assert_eq!(r.tables[0].1.len(), 6);
        assert_eq!(WAU_SERIES.last().unwrap().2, 500.0);
    }
}
