//! Extension: open-loop vs closed-loop clients on an agent fleet. The
//! paper's serving sections (and most serving papers) drive load as an
//! open-loop Poisson process — every request is a fresh arrival that
//! never reacts to service times. Real agent users are closed-loop: a
//! fixed population submits a task, waits for the answer, thinks, then
//! submits the next one *in the same session*. This experiment runs
//! both client models through the same fleet and shows (a) closed-loop
//! concurrency is bounded by the population, so the tail cannot diverge
//! the way Fig. 14's open-loop knee does, and (b) multi-turn sessions
//! make cache-aware routing matter more, not less: the history a
//! session accumulated in earlier turns is only reusable if later turns
//! land on the replica that still holds it.

use agentsim_metrics::Table;
use agentsim_serving::{ClientModel, FleetConfig, FleetSim, Routing};
use agentsim_simkit::SimDuration;

use crate::figure::{FigureResult, Scale};

/// Compares client models across routing policies on a four-replica fleet.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_closed_loop",
        "Extension: open-loop vs closed-loop clients on an agent fleet",
    );
    let replicas = 4;
    let qps = 6.0; // open-loop offered load; ~4x one replica's knee
    let users = 8;
    let think = SimDuration::from_secs(2);
    let turns = scale.serving_requests * 2;

    let clients = [
        ("open-loop", ClientModel::OpenLoopPoisson),
        (
            "closed-loop",
            ClientModel::ClosedLoop {
                concurrency: users,
                think_time: think,
            },
        ),
    ];
    let routings = [
        Routing::SessionAffinity,
        Routing::LeastLoaded,
        Routing::RoundRobin,
    ];

    let mut table = Table::with_columns(&[
        "Client", "Routing", "tput", "p50 s", "p95 s", "hit rate", "max live",
    ]);
    let mut rows = Vec::new();
    for (client_name, client) in &clients {
        for routing in routings {
            let cfg = FleetConfig::react_hotpotqa(replicas, routing, qps, turns)
                .seed(scale.seed)
                .client(client.clone());
            let report = FleetSim::new(cfg).run();
            table.row(vec![
                client_name.to_string(),
                routing.to_string(),
                format!("{:.2}", report.throughput),
                format!("{:.1}", report.p50_s),
                format!("{:.1}", report.p95_s),
                format!("{:.2}", report.kv_hit_rate),
                format!("{}", report.max_live_sessions),
            ]);
            rows.push((*client_name, routing, report));
        }
    }
    result.table(
        &format!(
            "ReAct/HotpotQA, {turns} turns on {replicas} replicas: open-loop at {qps} QPS \
             vs {users} closed-loop users thinking {}s between turns",
            think.as_secs_f64()
        ),
        table,
    );

    let get = |client: &str, r: Routing| {
        rows.iter()
            .find(|(c, x, _)| *c == client && *x == r)
            .map(|(_, _, rep)| rep)
            .expect("row present")
    };
    let open_rr = get("open-loop", Routing::RoundRobin);
    let closed_aff = get("closed-loop", Routing::SessionAffinity);
    let closed_rr = get("closed-loop", Routing::RoundRobin);

    result.check(
        "closed-loop-concurrency-bounded-by-population",
        rows.iter()
            .filter(|(c, _, _)| *c == "closed-loop")
            .all(|(_, _, rep)| rep.max_live_sessions <= users as u64),
        format!(
            "closed-loop max live sessions {:?} must never exceed the {users}-user population",
            rows.iter()
                .filter(|(c, _, _)| *c == "closed-loop")
                .map(|(_, r, rep)| (r.to_string(), rep.max_live_sessions))
                .collect::<Vec<_>>()
        ),
    );
    result.check(
        "open-loop-admits-unbounded-concurrency",
        open_rr.max_live_sessions > users as u64,
        format!(
            "open-loop round-robin peaked at {} live sessions (population cap is {users}); \
             open-loop load does not self-limit",
            open_rr.max_live_sessions
        ),
    );
    result.check(
        "affinity-beats-stateless-routing-under-closed-loop",
        closed_aff.kv_hit_rate > closed_rr.kv_hit_rate + 0.1,
        format!(
            "closed-loop hit rate: session-affinity {:.2} vs round-robin {:.2} — a returning \
             user's accumulated history only hits cache on the replica that holds it",
            closed_aff.kv_hit_rate, closed_rr.kv_hit_rate
        ),
    );
    result.check(
        "closed-loop-tames-the-tail",
        closed_rr.p95_s < open_rr.p95_s,
        format!(
            "round-robin p95: closed-loop {:.1}s vs open-loop {:.1}s — a finite population \
             stops queueing before the open-loop knee",
            closed_rr.p95_s, open_rr.p95_s
        ),
    );
    result.note(
        "Capacity planning from open-loop sweeps alone overstates tail risk for \
         population-limited agent traffic, and understates the value of sticky routing: \
         closed-loop users return to their session, so cache-aware placement keeps paying \
         across turns, not just within one request.",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 30,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
