//! Fig. 5: latency breakdown of agents (LLM / tool / overlap) and
//! end-to-end latency.

use agentsim_agents::AgentKind;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{agents_for, f1, mean_of, single_batch};

/// Measures the per-request latency partition for every agent x benchmark.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig05",
        "Latency breakdown and end-to-end latency per request (Fig. 5)",
    );
    let mut table = Table::with_columns(&[
        "Benchmark",
        "Agent",
        "LLM s",
        "Tool s",
        "Overlap s",
        "E2E s",
        "Tool %",
    ]);

    let mut hotpot_tool_share = 0.0;
    let mut webshop_tool_share = 0.0;
    let mut compiler_overlap_share = 0.0;
    let mut llm_share_sum = 0.0;
    let mut tool_share_sum = 0.0;
    let mut cells = 0.0;

    for benchmark in Benchmark::AGENTIC {
        for agent in agents_for(benchmark) {
            let outcomes = single_batch(agent, benchmark, scale);
            let llm = mean_of(&outcomes, |o| o.trace.llm_wall.as_secs_f64());
            let tool = mean_of(&outcomes, |o| o.trace.tool_wall.as_secs_f64());
            let overlap = mean_of(&outcomes, |o| o.trace.overlap_wall.as_secs_f64());
            let e2e = mean_of(&outcomes, |o| o.trace.e2e().as_secs_f64());
            let tool_share = if e2e > 0.0 { tool / e2e } else { 0.0 };
            table.row(vec![
                benchmark.to_string(),
                agent.to_string(),
                f1(llm),
                f1(tool),
                f1(overlap),
                f1(e2e),
                format!("{:.0}%", tool_share * 100.0),
            ]);
            if agent == AgentKind::React {
                match benchmark {
                    Benchmark::HotpotQa => hotpot_tool_share = tool_share,
                    Benchmark::WebShop => webshop_tool_share = tool_share,
                    _ => {}
                }
            }
            if agent == AgentKind::LlmCompiler && benchmark == Benchmark::HotpotQa && e2e > 0.0 {
                compiler_overlap_share = overlap / e2e;
            }
            if agent != AgentKind::Cot && e2e > 0.0 {
                llm_share_sum += llm / e2e;
                tool_share_sum += tool / e2e;
                cells += 1.0;
            }
        }
    }
    result.table("Mean latency partition per request", table);

    result.check(
        "wikipedia-dominates-hotpotqa",
        hotpot_tool_share > webshop_tool_share + 0.25,
        format!(
            "ReAct tool share: HotpotQA {:.0}% vs WebShop {:.0}% (paper: slow Wikipedia \
             API dominates HotpotQA; 20 ms WebShop tools are negligible)",
            hotpot_tool_share * 100.0,
            webshop_tool_share * 100.0
        ),
    );
    result.check(
        "llmcompiler-overlaps",
        compiler_overlap_share > 0.03 && compiler_overlap_share < 0.5,
        format!(
            "LLMCompiler overlaps {:.1}% of e2e latency (paper: 18.2%)",
            compiler_overlap_share * 100.0
        ),
    );
    let llm_mean = llm_share_sum / cells;
    let tool_mean = tool_share_sum / cells;
    result.check(
        "both-stages-contribute",
        llm_mean > 0.3 && tool_mean > 0.05,
        format!(
            "mean shares across tool agents: LLM {:.0}%, tool {:.0}% (paper: 69.4% / 30.2%)",
            llm_mean * 100.0,
            tool_mean * 100.0
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 6,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
