//! Extension: layer-wise pipelined KV transfers, swept over chunk
//! count and link speed.
//!
//! The disaggregation experiment (`ext_disagg`) prices KV migration as
//! a whole-footprint serial transfer: TTFT pays the full wire trip
//! after prefill finishes. But prefill produces KV layer by layer, so a
//! migration can ship as a train of layer chunks — completed layers on
//! the wire while the remaining layers still compute — and the toll
//! shrinks to the residual that could not be overlapped. This
//! experiment sweeps the chunk count on a contended PCIe cell (where
//! head-of-line waiting is real), then fixes the chunk count and sweeps
//! the link, to show where pipelining pays: the slower the link, the
//! larger the absolute TTFT rebate, while the wire itself stays FIFO
//! and every byte still moves exactly once per migration.

use agentsim_gpu::LinkSpec;
use agentsim_metrics::Table;
use agentsim_serving::{DisaggConfig, DisaggReport, DisaggSim, DisaggWorkload};

use crate::figure::{FigureResult, Scale};

/// Chunk counts swept in panel 1. 32 is full layer-wise for the 8B
/// preset (the driver clamps the knob to the model's layer count).
const CHUNK_SWEEP: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Chunk count pinned for the link-sensitivity panel.
const PIPE_CHUNKS: u32 = 16;

fn phase(report: &DisaggReport, name: &str) -> f64 {
    report
        .phase_totals()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| *s)
        .expect("known phase")
}

fn ttft_p95(report: &DisaggReport) -> f64 {
    let mut t = report.ttft();
    t.try_p95().unwrap_or(f64::NAN)
}

fn wire_chunks(report: &DisaggReport) -> u64 {
    report.links.iter().map(|l| l.chunks).sum()
}

fn wire_transfers(report: &DisaggReport) -> u64 {
    report.links.iter().map(|l| l.transfers).sum()
}

/// Sweeps transfer chunking on a contended PCIe split, then the link
/// spec at a fixed chunk count.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_pipeline",
        "Extension: layer-wise pipelined KV transfers (chunked-link model)",
    );
    let n = scale.serving_requests;
    let workload = DisaggWorkload::react_hotpotqa;

    // Panel 1: chunk-count sweep on the contended cell — 1P+1D over
    // PCIe, where serial migrations queue behind each other.
    let cell = |chunks: u32| {
        DisaggConfig::new(workload(), 1.0, n)
            .seed(scale.seed)
            .pools(1, 1)
            .link(LinkSpec::pcie_gen4())
            .transfer_chunks(chunks)
    };
    let mut table = Table::with_columns(&[
        "chunks",
        "transfer s",
        "ttft p95 s",
        "wait s",
        "wire chunks",
        "link busy s",
    ]);
    let mut sweep = Vec::new();
    for &chunks in &CHUNK_SWEEP {
        let report = DisaggSim::new(cell(chunks)).run();
        let busy: f64 = report.links.iter().map(|l| l.busy_s).sum();
        table.row(vec![
            format!("{chunks}"),
            format!("{:.3}", phase(&report, "transfer")),
            format!("{:.4}", ttft_p95(&report)),
            format!("{:.4}", report.transfer_wait.as_secs_f64()),
            format!("{}", wire_chunks(&report)),
            format!("{busy:.3}"),
        ]);
        sweep.push((chunks, report));
    }
    result.table(
        &format!("Chunk-count sweep, 1P+1D over PCIe at 1.0 QPS, {n} requests"),
        table,
    );

    let serial = &sweep[0].1;
    let deepest = &sweep.last().expect("non-empty sweep").1;
    result.check(
        "every-chunking-depth-beats-serial",
        sweep
            .iter()
            .skip(1)
            .all(|(_, r)| phase(r, "transfer") < phase(serial, "transfer")),
        format!(
            "transfer phase: serial {:.3} s, pipelined {} — per migration a \
             chunked train can never land later than the serial transfer",
            phase(serial, "transfer"),
            sweep
                .iter()
                .skip(1)
                .map(|(k, r)| format!("x{k} {:.3}", phase(r, "transfer")))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    );
    result.check(
        "full-layer-pipeline-cuts-transfer-25pct",
        phase(deepest, "transfer") <= 0.75 * phase(serial, "transfer"),
        format!(
            "transfer phase at x{}: {:.3} s vs serial {:.3} s ({:.0}% \
             smaller) — only the last layer's residual is left on TTFT",
            sweep.last().expect("non-empty sweep").0,
            phase(deepest, "transfer"),
            phase(serial, "transfer"),
            (1.0 - phase(deepest, "transfer") / phase(serial, "transfer")) * 100.0
        ),
    );
    result.check(
        "wire-stays-accounted-at-every-depth",
        sweep.iter().all(|(k, r)| {
            r.completed == n
                && (*k == 1) == (wire_chunks(r) == wire_transfers(r))
                && r.links
                    .iter()
                    .all(|l| l.busy_s > 0.0 && l.utilization > 0.0)
        }),
        format!(
            "all {} arms complete {n} requests; serial moves 1 chunk per \
             transfer, x32 moves {} chunks over {} transfers",
            sweep.len(),
            wire_chunks(deepest),
            wire_transfers(deepest)
        ),
    );
    let byte_spread = {
        let bytes: Vec<f64> = sweep
            .iter()
            .map(|(_, r)| r.transferred_bytes as f64)
            .collect();
        let lo = bytes.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = bytes.iter().cloned().fold(0.0_f64, f64::max);
        (hi - lo) / lo
    };
    result.check(
        "chunking-moves-the-same-footprints",
        byte_spread < 0.10,
        format!(
            "transferred bytes across all depths stay within {:.1}% of each \
             other — chunking reschedules the same KV, it does not grow or \
             shrink it (residual drift is prefix-cache state shifting with \
             arrival times)",
            byte_spread * 100.0
        ),
    );

    // Panel 2: link sensitivity at a fixed chunk count. The rebate is
    // the wire time hidden behind prefill, so it scales with the wire.
    let mut link_table =
        Table::with_columns(&["link", "serial transfer s", "x16 transfer s", "rebate s"]);
    let mut rebates = Vec::new();
    for link in [
        LinkSpec::nvlink4(),
        LinkSpec::rdma_400g(),
        LinkSpec::pcie_gen4(),
    ] {
        let name = link.name;
        let base = |chunks: u32| {
            DisaggConfig::new(workload(), 1.0, n)
                .seed(scale.seed)
                .pools(1, 1)
                .link(link.clone())
                .transfer_chunks(chunks)
        };
        let serial = DisaggSim::new(base(1)).run();
        let piped = DisaggSim::new(base(PIPE_CHUNKS)).run();
        let rebate = phase(&serial, "transfer") - phase(&piped, "transfer");
        link_table.row(vec![
            name.to_string(),
            format!("{:.4}", phase(&serial, "transfer")),
            format!("{:.4}", phase(&piped, "transfer")),
            format!("{rebate:.4}"),
        ]);
        rebates.push((name, rebate));
    }
    result.table(
        &format!("Pipelining rebate by link at x{PIPE_CHUNKS} chunks, 1P+1D, {n} requests"),
        link_table,
    );
    let rebate = |name: &str| {
        rebates
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, r)| *r)
            .expect("link ran")
    };
    result.check(
        "slower-links-earn-bigger-rebates",
        rebate("pcie_gen4") > rebate("nvlink4") && rebate("pcie_gen4") > 0.0,
        format!(
            "transfer-phase rebate: pcie {:.4} s vs nvlink {:.4} s — the \
             pipeline hides wire time, and PCIe has more of it to hide",
            rebate("pcie_gen4"),
            rebate("nvlink4")
        ),
    );

    result.note(format!(
        "Layer-wise chunking converts the KV-migration toll from a serial \
         post-prefill trip into an overlapped train: on the contended PCIe \
         cell the transfer phase drops from {:.3} s to {:.3} s at x32 while \
         every arm completes the same {n} requests and moves the same \
         footprints. The rebate is wire time hidden behind prefill, so \
         NVLink (already ~free) gains {:.4} s where PCIe gains {:.4} s — \
         pipelining matters exactly where the interconnect is the bottleneck.",
        phase(serial, "transfer"),
        phase(deepest, "transfer"),
        rebate("nvlink4"),
        rebate("pcie_gen4"),
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 24,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
