//! Fig. 17: tail latency and prefix-cache hit rate as the GPU memory
//! reserved for the KV cache shrinks (cache thrashing).

use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_serving::{ServingConfig, ServingSim, ServingWorkload};
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};

/// KV pool sizes relative to the model weight size (the paper's legend).
const FRACTIONS: [f64; 4] = [0.10, 0.20, 0.30, 2.00];

/// Sweeps the KV pool size under ReAct/HotpotQA load.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig17",
        "Tail latency and cache hit rate vs KV pool size (Fig. 17)",
    );
    let mut table = Table::with_columns(&[
        "KV pool (xWeights)",
        "tput",
        "p95 s",
        "hit rate",
        "evictions",
        "preemptions",
    ]);

    // Offered load above the knee, so achieved throughput measures the
    // capacity each pool size can sustain.
    let qps = 3.0;
    let mut rows = Vec::new();
    for fraction in FRACTIONS {
        let workload = ServingWorkload::Agent {
            kind: agentsim_agents::AgentKind::React,
            benchmark: Benchmark::HotpotQa,
            config: agentsim_agents::AgentConfig::default_8b(),
        };
        let cfg = ServingConfig::new(workload, qps, scale.serving_requests)
            .seed(scale.seed)
            .engine(EngineConfig::a100_llama8b().with_kv_fraction(fraction));
        let report = ServingSim::new(cfg).run();
        table.row(vec![
            format!("{fraction:.2}"),
            format!("{:.2}", report.throughput()),
            format!("{:.1}", report.p95_s),
            format!("{:.2}", report.kv_hit_rate),
            report.evictions.to_string(),
            report.preemptions.to_string(),
        ]);
        rows.push((fraction, report));
    }
    result.table("ReAct/HotpotQA at 1.5 QPS under shrinking KV pools", table);

    let get = |f: f64| rows.iter().find(|(x, _)| *x == f).map(|(_, r)| r).unwrap();
    let tiny = get(0.10);
    let small = get(0.30);
    let full = get(2.00);

    result.check(
        "tiny-pool-collapses-throughput",
        tiny.throughput() < 0.8 * full.throughput(),
        format!(
            "10% pool: {:.2} vs 200% pool: {:.2} QPS (paper: -86.3%)",
            tiny.throughput(),
            full.throughput()
        ),
    );
    result.check(
        "thrashing-lowers-hit-rate",
        tiny.kv_hit_rate < full.kv_hit_rate - 0.05,
        format!(
            "hit rate {:.2} at 10% vs {:.2} at 200% (evictions: {} vs {})",
            tiny.kv_hit_rate, full.kv_hit_rate, tiny.evictions, full.evictions
        ),
    );
    result.check(
        "tail-latency-inflates-under-pressure",
        tiny.p95_s > 1.1 * full.p95_s,
        format!(
            "p95 {:.1}s at 10% vs {:.1}s at 200%",
            tiny.p95_s, full.p95_s
        ),
    );
    result.check(
        "moderate-pool-still-degrades",
        small.throughput() <= full.throughput() * 1.02 && small.kv_hit_rate <= full.kv_hit_rate,
        format!(
            "30% pool: {:.2} QPS, hit {:.2} (paper: 35% lower throughput than 200%)",
            small.throughput(),
            small.kv_hit_rate
        ),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 50,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
