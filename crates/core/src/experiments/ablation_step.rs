//! Ablation: the roofline step-cost model vs a naive fixed per-token
//! cost. The roofline model is what makes batching sub-linear (weights
//! are read once per decode step regardless of batch size); a fixed
//! per-token model cannot reproduce the paper's serving results.

use agentsim_gpu::{ClusterSpec, PerfModel};
use agentsim_metrics::Table;

use crate::figure::{FigureResult, Scale};

/// Compares decode-step costs under the two models.
pub fn run(_scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ablation_step",
        "Ablation: roofline step model vs fixed per-token cost",
    );
    let perf = PerfModel::new(ClusterSpec::a100_llama8b());
    let single = perf.decode_step(&[2000]).duration.as_secs_f64();

    let mut table = Table::with_columns(&[
        "Batch size",
        "Roofline step ms",
        "Roofline ms/token",
        "Fixed-cost ms/token",
        "Batching speedup",
    ]);
    let mut speedups = Vec::new();
    for batch in [1usize, 4, 16, 64, 256] {
        let ctxs = vec![2000u64; batch];
        let step = perf.decode_step(&ctxs).duration.as_secs_f64();
        let per_token = step / batch as f64;
        let speedup = single / per_token;
        table.row(vec![
            batch.to_string(),
            format!("{:.1}", step * 1e3),
            format!("{:.2}", per_token * 1e3),
            format!("{:.2}", single * 1e3), // fixed model: always the single-seq cost
            format!("{speedup:.1}x"),
        ]);
        speedups.push((batch, speedup));
    }
    result.table(
        "Decode cost per token at 2,000-token contexts (one A100, 8B)",
        table,
    );

    let at = |b: usize| {
        speedups
            .iter()
            .find(|(x, _)| *x == b)
            .map(|(_, s)| *s)
            .unwrap()
    };
    result.check(
        "weight-reads-amortize",
        at(64) > 10.0,
        format!(
            "batch-64 decode is {:.1}x cheaper per token than batch-1 under the \
             roofline model; a fixed per-token model would predict 1.0x and thus a \
             ~{:.0}x lower serving capacity than the paper measures",
            at(64),
            at(64)
        ),
    );
    result.check(
        "amortization-saturates",
        at(256) / 256.0 < at(16) / 16.0,
        format!(
            "batching efficiency declines ({:.0}% at 16 vs {:.0}% at 256 of the linear \
             ideal) as KV reads start to dominate",
            at(16) / 16.0 * 100.0,
            at(256) / 256.0 * 100.0
        ),
    );
    result.note(
        "This is why the serving experiments (Fig. 14-17) need an engine-step \
         simulator: per-request cost models cannot express continuous batching.",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass() {
        let r = run(&Scale::quick());
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
