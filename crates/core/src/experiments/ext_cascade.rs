//! Extension: iso-dollar heterogeneous cascade vs homogeneous fleets.
//!
//! The paper's §VI prices test-time scaling in homogeneous-fleet terms:
//! every replica runs the same model on the same GPU, so accuracy is
//! bought by upgrading the whole fleet. This extension spends the same
//! hourly budget three ways — all-cheap 8B replicas, all-premium 70B
//! replicas, and a cognition-driven cascade that lands turns on the
//! cheap tier and escalates only the ones the 8B agent cannot solve —
//! and shows the cascade recovering premium-fleet accuracy while
//! keeping most decode traffic on the fast 8B replicas, dominating at
//! least one homogeneous arm on the accuracy/latency/cost front.
//!
//! Dollar prices appear only here (the simulator itself is price-free):
//! $2/h per A100, $4/h per H100, $1/h per L40S — round numbers in the
//! ratio of 2023-era on-demand cloud pricing.

use agentsim_llm::EngineConfig;
use agentsim_metrics::Table;
use agentsim_serving::{CascadePolicy, FleetConfig, FleetReport, ReplicaPool, Routing};

use crate::figure::{FigureResult, Scale};

/// On-demand $/GPU-hour by GPU model (experiment-local; the simulator
/// never sees prices).
fn gpu_dollars_per_hour(gpu_name: &str) -> f64 {
    if gpu_name.contains("H100") {
        4.0
    } else if gpu_name.contains("A100") {
        2.0
    } else if gpu_name.contains("L40S") {
        1.0
    } else {
        panic!("no price for {gpu_name}");
    }
}

/// Hourly cost of a fleet: sum over pools of replicas x GPUs x $/GPU-h.
fn fleet_dollars_per_hour(cfg: &FleetConfig) -> f64 {
    cfg.pools
        .iter()
        .map(|p| {
            f64::from(p.replicas)
                * f64::from(p.engine.cluster.gpu_count)
                * gpu_dollars_per_hour(p.engine.cluster.gpu.name)
        })
        .sum()
}

/// One iso-dollar arm.
struct Arm {
    name: &'static str,
    config: FleetConfig,
    /// Homogeneous baselines are dominance candidates; the cascade is not.
    homogeneous: bool,
}

fn arms(qps: f64, num_requests: u64, seed: u64) -> Vec<Arm> {
    let pool = |engine: EngineConfig, replicas: u32| ReplicaPool::new(engine, replicas);
    let fleet = |pools: Vec<ReplicaPool>| {
        FleetConfig::pooled(pools, Routing::SessionAffinity, qps, num_requests).seed(seed)
    };
    vec![
        Arm {
            name: "32x L40S 8B",
            config: fleet(vec![pool(EngineConfig::l40s_llama8b(), 32)]),
            homogeneous: true,
        },
        Arm {
            name: "16x A100 8B",
            config: fleet(vec![pool(EngineConfig::a100_llama8b(), 16)]),
            homogeneous: true,
        },
        Arm {
            name: "2x H100x4 70B",
            config: fleet(vec![pool(EngineConfig::h100x4_llama70b(), 2)]),
            homogeneous: true,
        },
        Arm {
            name: "cascade 8B->70B",
            config: fleet(vec![
                pool(EngineConfig::a100_llama8b(), 8),
                pool(EngineConfig::h100x4_llama70b(), 1),
            ])
            .cascade(CascadePolicy::standard()),
            homogeneous: false,
        },
    ]
}

/// Derived per-arm economics.
struct Outcome {
    name: &'static str,
    homogeneous: bool,
    rate: f64,
    accuracy: f64,
    dollars_per_solved: f64,
    report: FleetReport,
}

fn measure(arm: Arm) -> Outcome {
    let rate = fleet_dollars_per_hour(&arm.config);
    let report = agentsim_serving::FleetSim::new(arm.config).run();
    let finished = report.completed + report.late;
    let duration_h = finished as f64 / report.throughput / 3600.0;
    let accuracy = report.solved as f64 / finished as f64;
    let dollars_per_solved = rate * duration_h / report.solved.max(1) as f64;
    Outcome {
        name: arm.name,
        homogeneous: arm.homogeneous,
        rate,
        accuracy,
        dollars_per_solved,
        report,
    }
}

/// Runs the iso-dollar cascade sweep.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_cascade",
        "Extension: iso-dollar heterogeneous cascade vs homogeneous fleets",
    );
    let qps = 2.0;
    let num_requests = scale.serving_requests * 2;
    let mut table = Table::with_columns(&[
        "Fleet",
        "$/h",
        "accuracy",
        "escalated",
        "p95 s",
        "TPOT p99 ms",
        "$/solved",
    ]);

    let mut outcomes = Vec::new();
    for arm in arms(qps, num_requests, scale.seed) {
        let o = measure(arm);
        table.row(vec![
            o.name.to_string(),
            format!("{:.0}", o.rate),
            format!("{:.2}", o.accuracy),
            format!("{}", o.report.escalated),
            format!("{:.1}", o.report.p95_s),
            format!("{:.1}", o.report.tpot_p99_s * 1e3),
            format!("{:.4}", o.dollars_per_solved),
        ]);
        outcomes.push(o);
    }
    table.row(vec![
        "(budget)".to_string(),
        "32".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    result.table(
        &format!("ReAct/HotpotQA at {qps} QPS, every fleet priced at $32/h"),
        table,
    );

    let budget = outcomes[0].rate;
    result.check(
        "arms-are-iso-dollar",
        outcomes.iter().all(|o| (o.rate - budget).abs() < 1e-9),
        format!(
            "hourly rates: {:?}",
            outcomes.iter().map(|o| o.rate).collect::<Vec<_>>()
        ),
    );

    let cascade = outcomes
        .iter()
        .find(|o| !o.homogeneous)
        .expect("cascade arm");
    let premium = outcomes
        .iter()
        .find(|o| o.name == "2x H100x4 70B")
        .expect("premium arm");
    let cheap = outcomes
        .iter()
        .find(|o| o.name == "16x A100 8B")
        .expect("cheap arm");

    result.check(
        "cheap-fleet-caps-accuracy",
        cheap.accuracy < cascade.accuracy,
        format!(
            "all-8B accuracy {:.2} vs cascade {:.2} — money spent on more cheap \
             replicas cannot buy the answers the 8B agent cannot produce",
            cheap.accuracy, cascade.accuracy
        ),
    );
    result.check(
        "cascade-matches-premium-accuracy",
        cascade.accuracy >= premium.accuracy,
        format!(
            "cascade accuracy {:.2} vs all-70B {:.2} — escalation forwards every \
             turn the cheap tier fails, so no accuracy is left behind",
            cascade.accuracy, premium.accuracy
        ),
    );
    let dominated: Vec<&str> = outcomes
        .iter()
        .filter(|o| {
            o.homogeneous
                && cascade.accuracy >= o.accuracy
                && cascade.report.tpot_p99_s < o.report.tpot_p99_s
                && cascade.dollars_per_solved <= o.dollars_per_solved
        })
        .map(|o| o.name)
        .collect();
    result.check(
        "cascade-dominates-a-homogeneous-fleet",
        !dominated.is_empty(),
        format!(
            "cascade (acc {:.2}, TPOT p99 {:.1}ms, ${:.4}/solved) strictly dominates \
             {:?} on the iso-dollar accuracy/latency/cost front",
            cascade.accuracy,
            cascade.report.tpot_p99_s * 1e3,
            cascade.dollars_per_solved,
            dominated
        ),
    );
    result.check(
        "escalation-is-selective",
        cascade.report.escalated > 0
            && cascade.report.escalated < cascade.report.completed + cascade.report.late,
        format!(
            "{} of {} turns escalated to the 70B pool — the premium tier serves \
             only the hard tail, which is what keeps decode fast at equal spend",
            cascade.report.escalated,
            cascade.report.completed + cascade.report.late
        ),
    );

    // The cascade path re-routes live sessions across tiers mid-run; pin
    // that doing so stays bit-identical under the sharded parallel driver.
    let sharded = {
        let arm = arms(qps, num_requests, scale.seed)
            .into_iter()
            .find(|a| !a.homogeneous)
            .expect("cascade arm");
        agentsim_serving::FleetSim::new(arm.config.threads(2)).run()
    };
    result.check(
        "cascade-deterministic-across-threads",
        sharded.solved == cascade.report.solved
            && sharded.escalated == cascade.report.escalated
            && sharded.p95_s.to_bits() == cascade.report.p95_s.to_bits()
            && sharded.tpot_p99_s.to_bits() == cascade.report.tpot_p99_s.to_bits(),
        format!(
            "2-thread run: solved {} vs {}, escalated {} vs {}, p95 {:.6} vs {:.6}",
            sharded.solved,
            cascade.report.solved,
            sharded.escalated,
            cascade.report.escalated,
            sharded.p95_s,
            cascade.report.p95_s
        ),
    );

    result.note(
        "Corollary for the paper's Table III economics: fleet accuracy is not a \
         property of the model you buy but of the routing policy you run. At a \
         fixed hourly budget, reserving a slice for a premium pool and escalating \
         only cognition-hard turns beats spending the whole budget on either tier.",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 30,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
