//! Fig. 4: average number of LLM and tool invocations per request.

use agentsim_agents::AgentKind;
use agentsim_metrics::Table;
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};
use crate::presets::{agents_for, f1, mean_of, single_batch};

/// Measures per-request call counts for every agent x benchmark pair.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "fig04",
        "Average number of LLM and tool invocations per request (Fig. 4)",
    );
    let mut table = Table::with_columns(&["Benchmark", "Agent", "LLM calls", "Tool calls"]);
    let mut per_agent_llm: Vec<(AgentKind, f64)> = Vec::new();

    for benchmark in Benchmark::AGENTIC {
        for agent in agents_for(benchmark) {
            let outcomes = single_batch(agent, benchmark, scale);
            let llm = mean_of(&outcomes, |o| o.trace.llm_calls() as f64);
            let tools = mean_of(&outcomes, |o| o.trace.tool_calls() as f64);
            table.row(vec![
                benchmark.to_string(),
                agent.to_string(),
                f1(llm),
                f1(tools),
            ]);
            per_agent_llm.push((agent, llm));
        }
    }
    result.table("Mean invocations per request", table);

    let avg = |kind: AgentKind| {
        let v: Vec<f64> = per_agent_llm
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let cot = avg(AgentKind::Cot);
    let lats = avg(AgentKind::Lats);
    let tool_agents: f64 = [
        AgentKind::React,
        AgentKind::Reflexion,
        AgentKind::Lats,
        AgentKind::LlmCompiler,
    ]
    .iter()
    .map(|&k| avg(k))
    .sum::<f64>()
        / 4.0;

    result.check(
        "cot-single-call",
        (cot - 1.0).abs() < 1e-9,
        format!("CoT mean LLM calls = {cot} (paper: exactly 1)"),
    );
    result.check(
        "agents-many-more-calls",
        tool_agents > 4.0 * cot,
        format!("tool-augmented agents average {tool_agents:.1} calls vs CoT {cot} (paper: 9.2x)"),
    );
    result.check(
        "lats-dominates",
        lats > 3.0 * tool_agents / 2.0,
        format!("LATS averages {lats:.1} calls (paper: 71.0, highest of all)"),
    );
    result.note(format!(
        "Measured: CoT {cot:.1}, tool-augmented mean {tool_agents:.1}, LATS {lats:.1} LLM calls/request. \
         Paper anchors: CoT 1, others ~9.2x CoT, LATS 71."
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            samples: 6,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
        // 5 + 4 + 4 + 4 agent x benchmark cells.
        assert_eq!(r.tables[0].1.len(), 17);
    }
}
