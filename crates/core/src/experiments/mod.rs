//! The experiment registry: one module per paper table/figure.
//!
//! | id | paper artifact | what it shows |
//! |---|---|---|
//! | `table1` | Table I | agent capability matrix |
//! | `table2` | Table II | benchmark descriptions |
//! | `fig04` | Fig. 4 | LLM/tool invocations per request |
//! | `fig05` | Fig. 5 | latency breakdown (LLM/tool/overlap) |
//! | `fig06` | Fig. 6 | GPU runtime breakdown + utilization |
//! | `fig07` | Fig. 7 | latency distributions: chatbot vs agent |
//! | `fig08` | Fig. 8 | input/output token composition |
//! | `fig09` | Fig. 9 | context growth across iterations |
//! | `fig10` | Fig. 10 | prefill/decode split ± prefix caching |
//! | `fig11` | Fig. 11 | LLM latency ± prefix caching |
//! | `fig12` | Fig. 12 | KV memory per request ± prefix caching |
//! | `concurrency` | §IV-C text | sequential vs concurrent serving |
//! | `fig14` | Fig. 14 | tail latency vs QPS: chatbot vs agent |
//! | `fig15` | Fig. 15 | serving throughput ± prefix caching |
//! | `fig16` | Fig. 16 | serving KV memory ± prefix caching |
//! | `fig17` | Fig. 17 | KV pool size sweep (thrashing) |
//! | `fig18` | Fig. 18 | accuracy-cost Pareto across designs |
//! | `fig19` | Fig. 19 | iteration-budget sweep |
//! | `fig20` | Fig. 20 | few-shot-count sweep |
//! | `fig21` | Fig. 21 | sequential vs parallel scaling |
//! | `fig22` | Fig. 22 | model-size effects (8B vs 70B) |
//! | `fig23` | Fig. 23 | ChatGPT adoption series |
//! | `table3` | Table III | energy & datacenter power projections |

pub mod ablation_block;
pub mod ablation_chunked;
pub mod ablation_step;
pub mod concurrency;
pub mod ext_autoscale;
pub mod ext_cascade;
pub mod ext_closed_loop;
pub mod ext_disagg;
pub mod ext_hardware;
pub mod ext_kv_offload;
pub mod ext_mixed;
pub mod ext_overload;
pub mod ext_pipeline;
pub mod ext_routing;
pub mod ext_scheduler;
pub mod ext_spans;
pub mod ext_static;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod validation;

use crate::figure::{FigureResult, Scale};

/// A registered experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Registry id (`"fig04"`, `"table3"`, …).
    pub id: &'static str,
    /// What the paper calls it.
    pub paper_ref: &'static str,
    /// One-line description.
    pub title: &'static str,
    runner: fn(&Scale) -> FigureResult,
}

impl Experiment {
    /// Runs the experiment at the given scale.
    pub fn run(&self, scale: &Scale) -> FigureResult {
        (self.runner)(scale)
    }
}

macro_rules! experiment {
    ($id:ident, $paper:expr, $title:expr) => {
        Experiment {
            id: stringify!($id),
            paper_ref: $paper,
            title: $title,
            runner: $id::run,
        }
    };
}

/// Every experiment, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        experiment!(table1, "Table I", "Agent capability matrix"),
        experiment!(table2, "Table II", "Benchmark descriptions"),
        experiment!(fig04, "Fig. 4", "LLM and tool invocations per request"),
        experiment!(fig05, "Fig. 5", "Latency breakdown per agent"),
        experiment!(fig06, "Fig. 6", "GPU runtime breakdown and utilization"),
        experiment!(fig07, "Fig. 7", "Latency distribution: chatbot vs agent"),
        experiment!(fig08, "Fig. 8", "Input/output token composition"),
        experiment!(fig09, "Fig. 9", "Context growth across reasoning steps"),
        experiment!(fig10, "Fig. 10", "Prefill/decode split with prefix caching"),
        experiment!(
            fig11,
            "Fig. 11",
            "LLM inference latency with prefix caching"
        ),
        experiment!(
            fig12,
            "Fig. 12",
            "KV memory per request with prefix caching"
        ),
        experiment!(
            concurrency,
            "Sec. IV-C",
            "Sequential vs concurrent agent serving"
        ),
        experiment!(fig14, "Fig. 14", "Tail latency vs QPS: chatbot vs agent"),
        experiment!(fig15, "Fig. 15", "Serving throughput with prefix caching"),
        experiment!(fig16, "Fig. 16", "Serving KV memory with prefix caching"),
        experiment!(fig17, "Fig. 17", "KV pool size sweep (cache thrashing)"),
        experiment!(
            fig18,
            "Fig. 18",
            "Accuracy-cost Pareto across agent designs"
        ),
        experiment!(fig19, "Fig. 19", "Iteration budget sweep"),
        experiment!(fig20, "Fig. 20", "Few-shot prompting sweep"),
        experiment!(fig21, "Fig. 21", "Sequential vs parallel test-time scaling"),
        experiment!(fig22, "Fig. 22", "Model size effects on test-time scaling"),
        experiment!(fig23, "Fig. 23", "ChatGPT weekly-active-user growth"),
        experiment!(
            table3,
            "Table III",
            "Energy and datacenter power projections"
        ),
        experiment!(
            ablation_step,
            "(ablation)",
            "Roofline step model vs fixed per-token cost"
        ),
        experiment!(
            ablation_block,
            "(ablation)",
            "KV block size vs prefix-cache effectiveness"
        ),
        experiment!(
            ablation_chunked,
            "(ablation)",
            "Chunked prefill vs classic scheduling"
        ),
        experiment!(
            ext_scheduler,
            "(extension)",
            "Agent-aware scheduling (deepest-first) vs FCFS"
        ),
        experiment!(
            ext_hardware,
            "(extension)",
            "What-if: H100 hardware for agent serving"
        ),
        experiment!(
            ext_mixed,
            "(extension)",
            "Multi-tenant interference: chatbot QoS under agent traffic"
        ),
        experiment!(
            ext_routing,
            "(extension)",
            "Session routing across an agent-serving fleet"
        ),
        experiment!(
            ext_closed_loop,
            "(extension)",
            "Open-loop vs closed-loop clients on an agent fleet"
        ),
        experiment!(
            ext_spans,
            "(extension)",
            "Latency breakdown rebuilt from lifecycle spans"
        ),
        experiment!(
            ext_disagg,
            "(extension)",
            "Disaggregated prefill/decode serving vs colocated, iso-GPU"
        ),
        experiment!(
            ext_autoscale,
            "(extension)",
            "Autoscaled prefill/decode pools vs static splits, iso-GPU"
        ),
        experiment!(
            ext_overload,
            "(extension)",
            "Congestion collapse vs adaptive admission control"
        ),
        experiment!(
            ext_kv_offload,
            "(extension)",
            "KV offload to host DRAM/NVMe with invocation-distance eviction"
        ),
        experiment!(
            ext_pipeline,
            "(extension)",
            "Layer-wise pipelined KV transfers (chunked-link model)"
        ),
        experiment!(
            ext_static,
            "(extension)",
            "Static (Best-of-N) vs dynamic test-time scaling"
        ),
        experiment!(
            ext_cascade,
            "(extension)",
            "Iso-dollar heterogeneous cascade vs homogeneous fleets"
        ),
        experiment!(
            validation,
            "(validation)",
            "Event loop vs closed-form predictions"
        ),
    ]
}

/// Looks up an experiment by id.
pub fn experiment_by_id(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_paper_artifacts() {
        let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 40);
        for required in [
            "table1",
            "table2",
            "table3",
            "fig04",
            "fig17",
            "fig22",
            "concurrency",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(experiment_by_id("fig04").is_some());
        assert!(experiment_by_id("fig99").is_none());
        assert_eq!(experiment_by_id("table3").unwrap().paper_ref, "Table III");
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 40);
    }
}
