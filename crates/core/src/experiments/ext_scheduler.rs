//! Extension: agent-aware request scheduling (the paper's Key Takeaway
//! #7 asks for "agent-aware request dispatching"). We compare vLLM's
//! FCFS against a deepest-first policy that admits requests from
//! sessions with the most completed LLM calls first — an SRPT-flavored
//! heuristic: deep sessions are closest to finishing and their contexts
//! have the warmest prefix-cache state.

use agentsim_llm::{EngineConfig, SchedulerPolicy};
use agentsim_metrics::Table;
use agentsim_serving::{ServingConfig, ServingSim, ServingWorkload};
use agentsim_workloads::Benchmark;

use crate::figure::{FigureResult, Scale};

/// Compares FCFS vs deepest-first under agent load.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_scheduler",
        "Extension: agent-aware scheduling (deepest-first) vs FCFS",
    );
    let mut table = Table::with_columns(&[
        "Scheduler",
        "QPS",
        "tput",
        "p50 s",
        "p95 s",
        "mean in-flight sessions",
    ]);

    let mut rows = Vec::new();
    for (name, policy) in [
        ("FCFS", SchedulerPolicy::Fcfs),
        ("deepest-first", SchedulerPolicy::DeepestFirst),
    ] {
        for qps in [1.5, 3.0] {
            let workload = ServingWorkload::Agent {
                kind: agentsim_agents::AgentKind::React,
                benchmark: Benchmark::HotpotQa,
                config: agentsim_agents::AgentConfig::default_8b(),
            };
            let cfg = ServingConfig::new(workload, qps, scale.serving_requests)
                .seed(scale.seed)
                .engine(EngineConfig::a100_llama8b().with_scheduler(policy));
            let report = ServingSim::new(cfg).run();
            let in_flight = report.latencies.summary().mean() * report.throughput();
            table.row(vec![
                name.to_string(),
                format!("{qps:.1}"),
                format!("{:.2}", report.throughput()),
                format!("{:.1}", report.p50_s),
                format!("{:.1}", report.p95_s),
                format!("{in_flight:.1}"),
            ]);
            rows.push((name, qps, report));
        }
    }
    result.table("ReAct/HotpotQA under the two admission policies", table);

    let get = |name: &str, qps: f64| {
        rows.iter()
            .find(|(n, q, _)| *n == name && *q == qps)
            .map(|(_, _, r)| r)
            .expect("row present")
    };
    let fcfs = get("FCFS", 3.0);
    let deepest = get("deepest-first", 3.0);
    result.check(
        "deepest-first-does-not-lose-throughput",
        deepest.throughput() > 0.9 * fcfs.throughput(),
        format!(
            "throughput at 3 QPS: deepest-first {:.2} vs FCFS {:.2}",
            deepest.throughput(),
            fcfs.throughput()
        ),
    );
    result.check(
        "deepest-first-tames-median-or-tail",
        deepest.p50_s < fcfs.p50_s * 1.05 || deepest.p95_s < fcfs.p95_s * 1.05,
        format!(
            "deepest-first p50 {:.1}s / p95 {:.1}s vs FCFS p50 {:.1}s / p95 {:.1}s \
             (finishing started sessions first drains work-in-progress)",
            deepest.p50_s, deepest.p95_s, fcfs.p50_s, fcfs.p95_s
        ),
    );
    result.note(
        "This policy sketch trades fairness for completion: new sessions can \
         starve under sustained overload, so a production design would bound \
         the priority boost (cf. Autellix's queue-aware scheduling, which the \
         paper cites as related work).",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 40,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
