//! Extension: request routing across a replica fleet. The paper's §VI
//! scales per-query energy to datacenter fleets; this experiment shows
//! that *how* agent sessions are routed across those replicas decides
//! whether the prefix-caching wins of its Fig. 15 survive: an agent
//! session's iterative calls only hit the cache if they revisit the
//! replica that holds their history.

use agentsim_metrics::Table;
use agentsim_serving::{FleetConfig, FleetSim, Routing};

use crate::figure::{FigureResult, Scale};

/// Compares routing policies on a four-replica fleet.
pub fn run(scale: &Scale) -> FigureResult {
    let mut result = FigureResult::new(
        "ext_routing",
        "Extension: session routing across an agent-serving fleet",
    );
    let replicas = 4;
    let qps = 6.0; // ~4x one replica's knee
    let mut table =
        Table::with_columns(&["Routing", "tput", "p50 s", "p95 s", "hit rate", "energy Wh"]);

    let mut rows = Vec::new();
    for routing in [
        Routing::SessionAffinity,
        Routing::LeastLoaded,
        Routing::RoundRobin,
    ] {
        let cfg = FleetConfig::react_hotpotqa(replicas, routing, qps, scale.serving_requests * 2)
            .seed(scale.seed);
        let report = FleetSim::new(cfg).run();
        table.row(vec![
            routing.to_string(),
            format!("{:.2}", report.throughput),
            format!("{:.1}", report.p50_s),
            format!("{:.1}", report.p95_s),
            format!("{:.2}", report.kv_hit_rate),
            format!("{:.1}", report.energy_wh),
        ]);
        rows.push((routing, report));
    }
    result.table(
        &format!("ReAct/HotpotQA on {replicas} replicas at {qps} QPS"),
        table,
    );

    let get = |r: Routing| {
        rows.iter()
            .find(|(x, _)| *x == r)
            .map(|(_, rep)| rep)
            .expect("row present")
    };
    let affinity = get(Routing::SessionAffinity);
    let rr = get(Routing::RoundRobin);
    result.check(
        "affinity-preserves-prefix-reuse",
        affinity.kv_hit_rate > rr.kv_hit_rate + 0.15,
        format!(
            "hit rate: session-affinity {:.2} vs round-robin {:.2} — iterative calls \
             must revisit the replica holding their history",
            affinity.kv_hit_rate, rr.kv_hit_rate
        ),
    );
    result.check(
        "affinity-wins-latency-or-throughput",
        affinity.p95_s < rr.p95_s * 1.05 || affinity.throughput > rr.throughput * 0.95,
        format!(
            "session-affinity p95 {:.1}s / tput {:.2} vs round-robin p95 {:.1}s / tput {:.2}",
            affinity.p95_s, affinity.throughput, rr.p95_s, rr.throughput
        ),
    );
    result.note(
        "Corollary for the paper's Table III fleets: stateless load balancing \
         silently re-inflates the prefill compute that prefix caching saved. \
         Cache-aware (sticky) routing is part of the sustainable-serving story.",
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_pass_at_quick_scale() {
        let scale = Scale {
            serving_requests: 30,
            ..Scale::quick()
        };
        let r = run(&scale);
        assert!(r.all_checks_pass(), "failing: {:?}", r.failing_checks());
    }
}
