//! Experiment results: tables, notes, and shape checks.

use std::fmt;

use agentsim_metrics::Table;

/// How much work an experiment does. Tests use [`Scale::quick`]; the
/// `figures` binary uses [`Scale::paper`] (matching the paper's 50-sample
/// methodology where applicable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Single-request samples per cell (agent x benchmark x config).
    pub samples: u64,
    /// Requests per open-loop serving run.
    pub serving_requests: u64,
    /// Root seed.
    pub seed: u64,
}

impl Scale {
    /// Small and fast — for unit/integration tests.
    pub fn quick() -> Self {
        Scale {
            samples: 10,
            serving_requests: 40,
            seed: 7,
        }
    }

    /// Paper-fidelity sample counts (50 tasks per configuration).
    pub fn paper() -> Self {
        Scale {
            samples: 50,
            serving_requests: 150,
            seed: 7,
        }
    }
}

/// A machine-checked qualitative claim from the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Short name of the claim.
    pub name: String,
    /// Whether the reproduction satisfies it.
    pub passed: bool,
    /// Measured values backing the verdict.
    pub details: String,
}

impl Check {
    /// Builds a check from a claim name, a predicate and its evidence.
    pub fn new(name: &str, passed: bool, details: String) -> Self {
        Check {
            name: name.to_string(),
            passed,
            details,
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            if self.passed { "PASS" } else { "FAIL" },
            self.name,
            self.details
        )
    }
}

/// The output of one experiment: everything needed to compare against the
/// paper's figure/table.
#[derive(Debug, Clone, Default)]
pub struct FigureResult {
    /// Experiment id (`"fig04"`, `"table3"`, …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Captioned tables (usually one; multi-panel figures have several).
    pub tables: Vec<(String, Table)>,
    /// Prose observations (paper-vs-measured commentary).
    pub notes: Vec<String>,
    /// Shape checks.
    pub checks: Vec<Check>,
}

impl FigureResult {
    /// Creates an empty result with identity.
    pub fn new(id: &str, title: &str) -> Self {
        FigureResult {
            id: id.to_string(),
            title: title.to_string(),
            ..FigureResult::default()
        }
    }

    /// Adds a captioned table.
    pub fn table(&mut self, caption: &str, table: Table) -> &mut Self {
        self.tables.push((caption.to_string(), table));
        self
    }

    /// Adds a prose note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Adds a shape check.
    pub fn check(&mut self, name: &str, passed: bool, details: String) -> &mut Self {
        self.checks.push(Check::new(name, passed, details));
        self
    }

    /// Whether every shape check passed.
    pub fn all_checks_pass(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Names of failing checks (empty if all pass).
    pub fn failing_checks(&self) -> Vec<&str> {
        self.checks
            .iter()
            .filter(|c| !c.passed)
            .map(|c| c.name.as_str())
            .collect()
    }
}

impl fmt::Display for FigureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== {} — {} ====", self.id, self.title)?;
        for (caption, table) in &self.tables {
            writeln!(f, "\n{caption}")?;
            write!(f, "{table}")?;
        }
        if !self.notes.is_empty() {
            writeln!(f, "\nNotes:")?;
            for n in &self.notes {
                writeln!(f, "  - {n}")?;
            }
        }
        if !self.checks.is_empty() {
            writeln!(f, "\nShape checks:")?;
            for c in &self.checks {
                writeln!(f, "  {c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::paper().samples > Scale::quick().samples);
        assert!(Scale::paper().serving_requests > Scale::quick().serving_requests);
    }

    #[test]
    fn result_accumulates_and_reports() {
        let mut r = FigureResult::new("figXX", "demo");
        r.table("caption", Table::with_columns(&["a"]));
        r.note("observation");
        r.check("claim-1", true, "1 > 0".into());
        r.check("claim-2", false, "2 < 1".into());
        assert!(!r.all_checks_pass());
        assert_eq!(r.failing_checks(), vec!["claim-2"]);
        let s = r.to_string();
        assert!(s.contains("figXX"));
        assert!(s.contains("[FAIL] claim-2"));
        assert!(s.contains("caption"));
    }
}
