//! Property-based tests for the simulation kernel.

use agentsim_simkit::dist::{Categorical, Exponential, LogNormal, Sample, Uniform, Zipf};
use agentsim_simkit::{EventQueue, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn event_queue_pops_sorted_stable(
        times in prop::collection::vec(0u64..1000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut prev: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((pt, pi)) = prev {
                prop_assert!(t >= pt, "time order violated");
                if t == pt {
                    prop_assert!(i > pi, "FIFO tie-break violated");
                }
            }
            prev = Some((t, i));
        }
    }

    #[test]
    fn time_arithmetic_is_consistent(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
        let t = SimTime::from_micros(a);
        let d = SimDuration::from_micros(b);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn forked_streams_are_reproducible(seed in any::<u64>(), key in any::<u64>()) {
        let mut a = SimRng::seed_from(seed).fork(key);
        let mut b = SimRng::seed_from(seed).fork(key);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distributions_stay_in_their_supports(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let u = Uniform::new(3.0, 9.0);
        let e = Exponential::with_mean(2.0);
        let l = LogNormal::from_mean_cv(5.0, 0.5);
        let z = Zipf::new(20, 1.0);
        for _ in 0..200 {
            let x = u.sample(&mut rng);
            prop_assert!((3.0..9.0).contains(&x));
            prop_assert!(e.sample(&mut rng) > 0.0);
            prop_assert!(l.sample(&mut rng) > 0.0);
            let r = z.sample_rank(&mut rng);
            prop_assert!((1..=20).contains(&r));
        }
    }

    #[test]
    fn categorical_never_picks_zero_weight(
        weights in prop::collection::vec(0.0f64..10.0, 2..10),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let c = Categorical::new(&weights);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..300 {
            let i = c.sample_index(&mut rng);
            prop_assert!(weights[i] > 0.0, "picked index {i} with zero weight");
        }
    }

    #[test]
    fn duration_scaling_is_monotone(us in 1u64..1_000_000, f in 0.0f64..10.0) {
        let d = SimDuration::from_micros(us);
        let scaled = d.mul_f64(f);
        if f >= 1.0 {
            prop_assert!(scaled >= d);
        } else {
            prop_assert!(scaled <= d);
        }
    }
}
