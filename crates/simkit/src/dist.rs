//! Statistical distributions for workload and tool models.
//!
//! Implemented in-house (inverse-transform and Box–Muller methods) so the
//! workspace does not need a `rand_distr` dependency. Every distribution
//! implements [`Sample`], returning `f64` draws; discrete helpers are
//! provided for the common "sample a token count" case.

use std::fmt;

use crate::rng::SimRng;

/// A source of random `f64` draws.
///
/// Implementors are immutable; all state lives in the [`SimRng`].
pub trait Sample: fmt::Debug {
    /// Draws one value.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Draws one value and rounds it to a non-negative integer.
    fn sample_count(&self, rng: &mut SimRng) -> u64 {
        self.sample(rng).round().max(0.0) as u64
    }
}

/// A fixed value (degenerate distribution) — useful for configuration knobs
/// that may later become stochastic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Sample for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo >= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid uniform bounds [{lo}, {hi})"
        );
        Uniform { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// Exponential distribution — inter-arrival times of a Poisson process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate (events per
    /// unit time). The mean is `1 / rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn with_rate(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive, got {rate}"
        );
        Exponential { rate }
    }

    /// Creates an exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        Exponential { rate: 1.0 / mean }
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse transform; 1 - u avoids ln(0).
        -(1.0 - rng.f64()).ln() / self.rate
    }
}

/// Normal (Gaussian) distribution via the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "invalid normal parameters mean={mean} std_dev={std_dev}"
        );
        Normal { mean, std_dev }
    }

    fn standard(rng: &mut SimRng) -> f64 {
        let u1 = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mean + self.std_dev * Normal::standard(rng)
    }
}

/// Log-normal distribution — heavy-tailed latencies and token lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the parameters of the underlying normal.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid log-normal parameters mu={mu} sigma={sigma}"
        );
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal with the given arithmetic mean and coefficient
    /// of variation (`std_dev / mean`). This is the natural way to specify
    /// "a 1.2 s call with ±40% spread".
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `cv < 0`.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0 && cv.is_finite() && cv >= 0.0,
            "invalid log-normal spec mean={mean} cv={cv}"
        );
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }

    /// The arithmetic mean of the distribution.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }
}

/// Categorical distribution over weighted alternatives; samples an index.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "weights must not all be zero");
        for c in &mut cumulative {
            *c /= total;
        }
        Categorical { cumulative }
    }

    /// Draws an index in `[0, len)` with probability proportional to its
    /// weight.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("weights are finite"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Zipf distribution on `{1, …, n}` — popularity skew (e.g. shared prompt
/// prefixes, repeated queries).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "invalid zipf exponent {s}");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        Zipf {
            cumulative: Categorical::new(&weights).cumulative,
        }
    }

    /// Draws a rank in `[1, n]`.
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        let i = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("weights are finite"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        };
        i + 1
    }
}

impl Sample for Zipf {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// A log-normal clamped to `[lo, hi]` — practical for token counts that must
/// stay within a context window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClampedLogNormal {
    inner: LogNormal,
    lo: f64,
    hi: f64,
}

impl ClampedLogNormal {
    /// Creates a clamped log-normal from mean, coefficient of variation and
    /// inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`LogNormal::from_mean_cv`], or if
    /// `lo > hi`.
    pub fn from_mean_cv(mean: f64, cv: f64, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid clamp bounds [{lo}, {hi}]");
        ClampedLogNormal {
            inner: LogNormal::from_mean_cv(mean, cv),
            lo,
            hi,
        }
    }
}

impl Sample for ClampedLogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(dist: &dyn Sample, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::seed_from(0);
        let d = Constant(5.5);
        assert_eq!(d.sample(&mut rng), 5.5);
        assert_eq!(d.sample_count(&mut rng), 6);
    }

    #[test]
    fn uniform_mean_and_bounds() {
        let d = Uniform::new(10.0, 20.0);
        let m = mean_of(&d, 1, 20_000);
        assert!((m - 15.0).abs() < 0.2, "mean {m}");
        let mut rng = SimRng::seed_from(2);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((10.0..20.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let d = Exponential::with_rate(4.0);
        let m = mean_of(&d, 3, 50_000);
        assert!((m - 0.25).abs() < 0.01, "mean {m}");
        assert_eq!(Exponential::with_mean(0.25).rate(), 4.0);
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::with_mean(1.0);
        let mut rng = SimRng::seed_from(4);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Normal::new(100.0, 15.0);
        let m = mean_of(&d, 5, 50_000);
        assert!((m - 100.0).abs() < 0.5, "mean {m}");
        let mut rng = SimRng::seed_from(6);
        let var = (0..50_000)
            .map(|_| {
                let x = d.sample(&mut rng) - 100.0;
                x * x
            })
            .sum::<f64>()
            / 50_000.0;
        assert!((var.sqrt() - 15.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn log_normal_mean_cv_round_trip() {
        let d = LogNormal::from_mean_cv(1.2, 0.4);
        assert!((d.mean() - 1.2).abs() < 1e-9);
        let m = mean_of(&d, 7, 100_000);
        assert!((m - 1.2).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn log_normal_is_positive_and_skewed() {
        let d = LogNormal::from_mean_cv(1.0, 1.0);
        let mut rng = SimRng::seed_from(8);
        let draws: Vec<f64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&x| x > 0.0));
        let mut sorted = draws.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[5_000];
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!(median < mean, "log-normal should be right-skewed");
    }

    #[test]
    fn categorical_respects_weights() {
        let d = Categorical::new(&[1.0, 0.0, 3.0]);
        let mut rng = SimRng::seed_from(9);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[d.sample_index(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let d = Zipf::new(100, 1.1);
        let mut rng = SimRng::seed_from(10);
        let mut first = 0usize;
        for _ in 0..10_000 {
            let r = d.sample_rank(&mut rng);
            assert!((1..=100).contains(&r));
            if r == 1 {
                first += 1;
            }
        }
        assert!(first > 1_500, "rank 1 drawn {first} times");
    }

    #[test]
    fn clamped_log_normal_stays_in_bounds() {
        let d = ClampedLogNormal::from_mean_cv(100.0, 2.0, 10.0, 300.0);
        let mut rng = SimRng::seed_from(11);
        for _ in 0..5_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=300.0).contains(&x));
        }
    }

    #[test]
    fn sample_count_is_rounded_non_negative() {
        let d = Normal::new(0.4, 0.01);
        let mut rng = SimRng::seed_from(12);
        assert_eq!(d.sample_count(&mut rng), 0);
        let d = Normal::new(-5.0, 0.1);
        assert_eq!(d.sample_count(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "invalid uniform bounds")]
    fn uniform_rejects_inverted_bounds() {
        let _ = Uniform::new(2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn categorical_rejects_empty() {
        let _ = Categorical::new(&[]);
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::with_rate(0.0);
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_rejects_negative_rate() {
        let _ = Exponential::with_rate(-1.0);
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_rejects_nan_rate() {
        let _ = Exponential::with_rate(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_rejects_infinite_rate() {
        let _ = Exponential::with_rate(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "exponential mean must be positive")]
    fn exponential_rejects_zero_mean() {
        let _ = Exponential::with_mean(0.0);
    }

    #[test]
    #[should_panic(expected = "exponential mean must be positive")]
    fn exponential_rejects_non_finite_mean() {
        let _ = Exponential::with_mean(f64::NAN);
    }
}
