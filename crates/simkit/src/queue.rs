//! Deterministic future-event list.
//!
//! A thin wrapper over a binary heap keyed by `(SimTime, sequence)` so that
//! events scheduled for the same instant pop in insertion order. This makes
//! whole-simulation runs bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A priority queue of future events ordered by simulated time.
///
/// Events at the same instant are delivered FIFO (by insertion order), which
/// keeps simulations deterministic without requiring `E: Ord`.
///
/// # Example
///
/// ```
/// use agentsim_simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(20), "late");
/// q.push(SimTime::from_micros(10), "early");
/// q.push(SimTime::from_micros(10), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for t in [5u64, 1, 9, 3, 7] {
            q.push(SimTime::from_micros(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(42);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<u32> = (0..5)
            .map(|i| (SimTime::from_micros(i), i as u32))
            .collect();
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }
}
