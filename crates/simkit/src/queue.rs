//! Deterministic future-event list.
//!
//! A thin wrapper over a binary heap keyed by `(SimTime, sequence)` so that
//! events scheduled for the same instant pop in insertion order. This makes
//! whole-simulation runs bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A priority queue of future events ordered by simulated time.
///
/// Events at the same instant are delivered FIFO (by insertion order), which
/// keeps simulations deterministic without requiring `E: Ord`.
///
/// # Example
///
/// ```
/// use agentsim_simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(20), "late");
/// q.push(SimTime::from_micros(10), "early");
/// q.push(SimTime::from_micros(10), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

/// A sequence number reserved by [`EventQueue::reserve_slot`] but not yet
/// holding an event.
///
/// Reserving a slot fixes the event's FIFO rank among same-instant events
/// *now*, while the event itself (and even its timestamp) can be supplied
/// later via [`EventQueue::push_reserved`]. Parallel drivers use this to
/// pin the ordering of step-completion events at the moment the step is
/// kicked off, before the worker thread has computed when it ends.
///
/// The type is intentionally not `Copy`/`Clone`: each reservation is
/// consumed by exactly one `push_reserved`.
#[derive(Debug)]
pub struct SlotId(u64);

impl SlotId {
    /// The raw sequence number, for ordering comparisons against
    /// [`EventQueue::peek_key`].
    pub fn seq(&self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Reserves the next sequence number without inserting an event.
    ///
    /// The returned [`SlotId`] must later be redeemed with
    /// [`push_reserved`](Self::push_reserved); until then the queue simply
    /// skips that sequence number. Events pushed after the reservation sort
    /// *after* the reserved slot at the same instant, exactly as if the
    /// reserved event had been pushed here.
    pub fn reserve_slot(&mut self) -> SlotId {
        let seq = self.seq;
        self.seq += 1;
        SlotId(seq)
    }

    /// Schedules `event` at `at` under a previously reserved slot.
    ///
    /// Its FIFO rank among same-instant events is the reservation point,
    /// not the call point.
    pub fn push_reserved(&mut self, slot: SlotId, at: SimTime, event: E) {
        self.heap.push(Reverse(Entry {
            at,
            seq: slot.0,
            event,
        }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// The full ordering key `(time, sequence)` of the earliest pending
    /// event, if any. Lets callers compare the queue head against
    /// reservations that have not been redeemed yet.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse(e)| (e.at, e.seq))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for t in [5u64, 1, 9, 3, 7] {
            q.push(SimTime::from_micros(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(42);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<u32> = (0..5)
            .map(|i| (SimTime::from_micros(i), i as u32))
            .collect();
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn reserved_slot_keeps_insertion_rank() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        q.push(t, "a");
        let slot = q.reserve_slot();
        q.push(t, "c"); // pushed before the slot is redeemed...
        q.push_reserved(slot, t, "b"); // ...but the slot was reserved first
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn reserved_slot_timestamp_is_chosen_at_redeem_time() {
        let mut q = EventQueue::new();
        let slot = q.reserve_slot();
        q.push(SimTime::from_micros(5), "later");
        q.push_reserved(slot, SimTime::from_micros(3), "earlier");
        assert_eq!(q.pop(), Some((SimTime::from_micros(3), "earlier")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(5), "later")));
    }

    #[test]
    fn peek_key_exposes_head_sequence() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_key(), None);
        let t = SimTime::from_micros(9);
        q.push(t, 1);
        q.push(t, 2);
        let (at, seq) = q.peek_key().unwrap();
        assert_eq!(at, t);
        q.pop();
        let (_, seq2) = q.peek_key().unwrap();
        assert!(seq2 > seq);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }
}
