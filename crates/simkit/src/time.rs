//! Simulated time: integer microseconds since simulation start.
//!
//! Using integers (rather than `f64` seconds) keeps the event queue totally
//! ordered without floating-point ties and makes simulations bit-for-bit
//! reproducible across platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds per second, the base resolution of the simulated clock.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulated clock, measured in microseconds from t = 0.
///
/// `SimTime` is an absolute point in time; [`SimDuration`] is a span.
/// The usual arithmetic holds: `SimTime + SimDuration = SimTime`,
/// `SimTime - SimTime = SimDuration`.
///
/// # Example
///
/// ```
/// use agentsim_simkit::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
///
/// # Example
///
/// ```
/// use agentsim_simkit::SimDuration;
///
/// let d = SimDuration::from_secs_f64(0.25) + SimDuration::from_millis(250);
/// assert_eq!(d.as_secs_f64(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds since t = 0.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from (possibly fractional) seconds since t = 0.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_micros(secs))
    }

    /// Raw microseconds since t = 0.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since t = 0 as a float (for reporting; never for ordering).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a span from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_micros(secs))
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting and rate math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Whether the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self - other`, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the span by a non-negative factor, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

fn secs_to_micros(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "simulated seconds must be finite and non-negative, got {secs}"
    );
    (secs * MICROS_PER_SEC as f64).round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        let t2 = t + SimDuration::from_millis(500);
        assert_eq!(t2.as_secs_f64(), 2.0);
        assert_eq!(t2 - t, SimDuration::from_millis(500));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.000_001),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(30);
        assert_eq!(b.saturating_since(a), SimDuration::from_micros(20));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds_to_nearest() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(0.25), SimDuration::from_micros(3)); // 2.5 rounds to 3
        assert_eq!(d.mul_f64(2.0), SimDuration::from_micros(20));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(20).to_string(), "20.000ms");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimTime::from_secs_f64(1.0).to_string(), "t=1.000000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let mut times: Vec<SimTime> = (0..100).map(|i| SimTime::from_micros(99 - i)).collect();
        times.sort();
        for (i, t) in times.iter().enumerate() {
            assert_eq!(t.as_micros(), i as u64);
        }
    }
}
