//! Deterministic random numbers with cheap independent sub-streams.
//!
//! All stochastic behaviour in the workspace flows through [`SimRng`], so a
//! single `u64` seed pins an entire experiment. Sub-streams ([`SimRng::fork`])
//! let independent components (each request, each tool call) draw from
//! decorrelated sequences without sharing mutable state.

/// A seedable random number generator for simulations.
///
/// Wraps an in-tree xoshiro256++ core (no external dependency, so the
/// workspace builds offline) and adds domain-separated forking: a parent
/// stream can mint child streams keyed by an arbitrary `u64` (e.g. a request
/// id), and the child sequence is a pure function of `(root seed, key path)`.
///
/// # Example
///
/// ```
/// use agentsim_simkit::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// let mut child = a.fork(123);
/// let _ = child.f64(); // independent of the parent's future draws
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256PlusPlus,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a root seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256PlusPlus::seed_from_u64(splitmix64(seed)),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Mints an independent child stream keyed by `key`.
    ///
    /// Forking does not consume randomness from the parent, so the parent's
    /// own sequence is unaffected by how many children are created.
    pub fn fork(&self, key: u64) -> SimRng {
        let child_seed = splitmix64(self.seed ^ splitmix64(key.wrapping_add(0x9E37_79B9)));
        SimRng::seed_from(child_seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick an index from an empty range");
        self.below(n as u64) as usize
    }

    /// Unbiased uniform draw in `[0, n)` (Lemire's multiply-shift method).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = self.inner.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n || low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

/// The xoshiro256++ generator (Blackman & Vigna) backing [`SimRng`].
///
/// Small, fast, and statistically strong; vendored in-tree so the
/// workspace has zero external runtime dependencies.
#[derive(Debug, Clone)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands a 64-bit seed into the 256-bit state with a SplitMix64
    /// stream (the seeding procedure the xoshiro authors recommend).
    fn seed_from_u64(seed: u64) -> Self {
        const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut state = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s[0] = 1; // the all-zero state is a fixed point
        }
        Xoshiro256PlusPlus { s }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// SplitMix64 mixing function — used to derive well-distributed seeds from
/// structured keys (request ids, stage numbers, …).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes an arbitrary byte string plus an index into a `u64` — used by the
/// token-segment machinery to derive stable content ids.
pub fn hash_key(bytes: &[u8], index: u64) -> u64 {
    // FNV-1a over bytes, then splitmix with the index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(h ^ splitmix64(index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from(99);
        let mut b = SimRng::seed_from(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 4,
            "streams should be decorrelated, {same} collisions"
        );
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let parent = SimRng::seed_from(5);
        let mut c1 = parent.fork(10);
        let mut c2 = parent.fork(10);
        let mut c3 = parent.fork(11);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let mut a = SimRng::seed_from(5);
        let mut b = SimRng::seed_from(5);
        let _ = b.fork(1);
        let _ = b.fork(2);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_rate_is_close() {
        let mut rng = SimRng::seed_from(8);
        let hits = (0..20_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SimRng::seed_from(6);
        for _ in 0..1000 {
            let x = rng.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let n = rng.range_u64(10, 20);
            assert!((10..20).contains(&n));
        }
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut rng = SimRng::seed_from(7);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*rng.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hash_key_distinguishes_inputs() {
        assert_ne!(hash_key(b"a", 0), hash_key(b"a", 1));
        assert_ne!(hash_key(b"a", 0), hash_key(b"b", 0));
        assert_eq!(hash_key(b"a", 0), hash_key(b"a", 0));
    }
}
