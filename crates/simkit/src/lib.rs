//! Discrete-event simulation kernel for the `agentsim` workspace.
//!
//! This crate provides the building blocks every other simulation crate is
//! written against:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer-microsecond simulated clock
//!   with exact ordering (no floating-point drift in the event queue),
//! * [`EventQueue`] — a deterministic future-event list with stable FIFO
//!   tie-breaking for simultaneous events,
//! * [`SimRng`] — a small, seedable RNG with cheap independent sub-streams,
//! * [`dist`] — the statistical distributions the workload and tool models
//!   need (exponential, log-normal, normal, categorical, Zipf, …),
//!   implemented in-house so the workspace needs no `rand_distr` dependency.
//!
//! # Example
//!
//! ```
//! use agentsim_simkit::{EventQueue, SimDuration, SimTime, SimRng};
//! use agentsim_simkit::dist::{Exponential, Sample};
//!
//! let mut rng = SimRng::seed_from(42);
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! let arrivals = Exponential::with_rate(2.0); // two events per second
//!
//! let mut t = SimTime::ZERO;
//! for _ in 0..3 {
//!     t += SimDuration::from_secs_f64(arrivals.sample(&mut rng));
//!     queue.push(t, "arrival");
//! }
//! while let Some((when, what)) = queue.pop() {
//!     assert_eq!(what, "arrival");
//!     assert!(when >= SimTime::ZERO);
//! }
//! ```

pub mod dist;
pub mod queue;
pub mod rng;
pub mod time;

pub use queue::{EventQueue, SlotId};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
