//! Failure-injection integration tests: tool errors and timeouts must
//! degrade agents gracefully, never wedge them.

use agent_infra_sim::prelude::*;
use agentsim_serving::SingleRequest;
use agentsim_tools::{FailurePolicy, ToolExecutor};

fn flaky_executor(rate_multiplier: f64) -> ToolExecutor {
    ToolExecutor::new().failure_policy(FailurePolicy {
        rate_multiplier,
        failure_latency_multiplier: 2.5,
    })
}

#[test]
fn agents_survive_total_tool_outage() {
    // Every tool call fails; agents must still terminate with an answer
    // attempt (almost certainly wrong).
    for kind in [AgentKind::React, AgentKind::Reflexion, AgentKind::Lats] {
        let o = SingleRequest::new(kind, Benchmark::HotpotQa)
            .seed(5)
            .tool_executor(flaky_executor(1_000.0))
            .run();
        assert!(o.trace.tool_calls() >= 1, "{kind} must have tried tools");
        assert!(
            o.trace.tools.iter().all(|t| t.failed),
            "{kind}: outage means every call fails"
        );
    }
}

#[test]
fn failure_rate_degrades_accuracy() {
    let accuracy = |mult: f64| {
        let outcomes = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(6)
            .tool_executor(flaky_executor(mult))
            .run_batch(40);
        outcomes.iter().filter(|o| o.trace.outcome.solved).count() as f64 / 40.0
    };
    let healthy = accuracy(0.0);
    let broken = accuracy(1_000.0);
    assert!(
        healthy > broken + 0.1,
        "healthy {healthy} vs total outage {broken}"
    );
}

#[test]
fn failed_calls_inflate_latency() {
    let mean_latency = |mult: f64| {
        let outcomes = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
            .seed(7)
            .tool_executor(flaky_executor(mult))
            .run_batch(25);
        outcomes
            .iter()
            .map(|o| o.trace.e2e().as_secs_f64())
            .sum::<f64>()
            / 25.0
    };
    let healthy = mean_latency(0.0);
    let degraded = mean_latency(1_000.0);
    // Timeouts are slower per call AND failures force more iterations.
    assert!(
        degraded > healthy,
        "degraded {degraded:.1}s should exceed healthy {healthy:.1}s"
    );
}

#[test]
fn failures_do_not_break_determinism_or_accounting() {
    let run = || {
        SingleRequest::new(AgentKind::LlmCompiler, Benchmark::HotpotQa)
            .seed(8)
            .tool_executor(flaky_executor(30.0))
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.trace.e2e(), b.trace.e2e());
    assert_eq!(a.trace.tool_calls(), b.trace.tool_calls());
    // Accounting still partitions e2e.
    assert_eq!(
        a.trace.llm_wall + a.trace.tool_wall + a.trace.overlap_wall,
        a.trace.e2e()
    );
}
