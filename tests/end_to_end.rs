//! End-to-end integration tests across the whole workspace, exercised
//! through the public facade exactly as a downstream user would.

use agent_infra_sim::prelude::*;
use agentsim_serving::SingleRequest as RawSingleRequest;

#[test]
fn facade_reexports_the_whole_stack() {
    // Types from every layer are reachable through the prelude.
    let outcome = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
        .seed(1)
        .run();
    assert!(outcome.trace.llm_calls() >= 1);
    let _table: Table = Table::with_columns(&["x"]);
    let _cfg: EngineConfig = EngineConfig::a100_llama8b();
}

#[test]
fn facade_and_raw_crate_agree() {
    let a = SingleRequest::new(AgentKind::React, Benchmark::WebShop)
        .seed(9)
        .run();
    let b = RawSingleRequest::new(AgentKind::React, Benchmark::WebShop)
        .seed(9)
        .run();
    assert_eq!(a.trace.e2e(), b.trace.e2e());
    assert_eq!(a.trace.llm_calls(), b.trace.llm_calls());
}

#[test]
fn trace_token_accounting_is_internally_consistent() {
    for kind in [AgentKind::Cot, AgentKind::React, AgentKind::Lats] {
        let o = SingleRequest::new(kind, Benchmark::HotpotQa).seed(4).run();
        for call in &o.trace.llm {
            // The breakdown the agent reported must match the prompt the
            // engine actually saw.
            assert_eq!(
                call.breakdown.input_total(),
                call.completion.prompt_tokens,
                "{kind}: breakdown disagrees with engine prompt size"
            );
            // Cache hits can never exceed the prompt.
            assert!(call.completion.cached_tokens <= call.completion.prompt_tokens);
            // The reported output is what the breakdown records.
            assert_eq!(call.breakdown.output, call.completion.output_tokens);
        }
    }
}

#[test]
fn energy_latency_utilization_triangle_holds() {
    // energy == integral of power over the window, so it is bounded by
    // idle power x window below and peak power x window above.
    let o = SingleRequest::new(AgentKind::Reflexion, Benchmark::HotpotQa)
        .seed(2)
        .run();
    let window_h = o.trace.e2e().as_secs_f64() / 3600.0;
    let idle_w = 60.0;
    let peak_w = 400.0;
    assert!(o.energy_wh >= idle_w * window_h * 0.99, "below idle floor");
    assert!(
        o.energy_wh <= peak_w * window_h * 1.01,
        "above peak ceiling"
    );
    assert!((0.0..=1.0).contains(&o.utilization));
}

#[test]
fn registry_runs_cheap_experiments_cleanly() {
    let scale = Scale {
        samples: 5,
        serving_requests: 15,
        seed: 7,
    };
    for id in ["table1", "table2", "fig23", "ablation_step"] {
        let e = experiments::experiment_by_id(id).expect("registered");
        let r = e.run(&scale);
        assert!(
            r.all_checks_pass(),
            "{id} failing checks: {:?}",
            r.failing_checks()
        );
        assert!(!r.tables.is_empty(), "{id} must produce a table");
    }
}

#[test]
fn deterministic_across_thread_schedules() {
    // run_batch parallelizes across threads; results must not depend on
    // interleaving.
    let runner = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa).seed(11);
    let a: Vec<f64> = runner
        .run_batch(8)
        .iter()
        .map(|o| o.trace.e2e().as_secs_f64())
        .collect();
    let b: Vec<f64> = runner
        .run_batch(8)
        .iter()
        .map(|o| o.trace.e2e().as_secs_f64())
        .collect();
    assert_eq!(a, b);
}

#[test]
fn serving_and_single_agree_on_workload_character() {
    // The serving simulator at a trickle load should roughly reproduce
    // single-request latencies (no contention).
    let single = SingleRequest::new(AgentKind::React, Benchmark::WebShop)
        .seed(3)
        .run_batch(10);
    let mean_single: f64 = single
        .iter()
        .map(|o| o.trace.e2e().as_secs_f64())
        .sum::<f64>()
        / single.len() as f64;

    let workload = ServingWorkload::Agent {
        kind: AgentKind::React,
        benchmark: Benchmark::WebShop,
        config: AgentConfig::default_8b(),
    };
    let report = ServingSim::new(ServingConfig::new(workload, 0.02, 10).seed(3)).run();
    let mean_serving = report.latencies.summary().mean();
    let ratio = mean_serving / mean_single;
    assert!(
        (0.5..2.0).contains(&ratio),
        "trickle serving {mean_serving:.1}s vs single {mean_single:.1}s"
    );
}
