//! Quickstart: run one ReAct agent request on a simulated A100 +
//! Llama-3.1-8B serving stack and inspect everything the paper measures
//! about it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use agent_infra_sim::prelude::*;

fn main() {
    // One ReAct request answering a HotpotQA-style multi-hop question,
    // with Wikipedia tools, prefix caching on, everything at defaults.
    let outcome = SingleRequest::new(AgentKind::React, Benchmark::HotpotQa)
        .seed(42)
        .run();

    let trace = &outcome.trace;
    println!("=== {trace}\n");

    println!("LLM calls ({} total):", trace.llm_calls());
    for (i, call) in trace.llm.iter().enumerate() {
        println!(
            "  #{:<2} {:<10} in={:<5} cached={:<5} out={:<4} prefill={} decode={}",
            i + 1,
            call.kind.to_string(),
            call.completion.prompt_tokens,
            call.completion.cached_tokens,
            call.completion.output_tokens,
            call.completion.prefill_time,
            call.completion.decode_time,
        );
    }

    println!("\nTool calls ({} total):", trace.tool_calls());
    for (i, tool) in trace.tools.iter().enumerate() {
        println!("  #{:<2} {tool}", i + 1);
    }

    println!("\nWhat the infrastructure saw:");
    println!("  end-to-end latency   {}", trace.e2e());
    println!(
        "  latency partition    llm {} + tool {} + overlap {}",
        trace.llm_wall, trace.tool_wall, trace.overlap_wall
    );
    println!("  GPU utilization      {:.0}%", outcome.utilization * 100.0);
    println!(
        "  GPU time             prefill {} / decode {} / idle {}",
        outcome.prefill_busy, outcome.decode_busy, outcome.idle
    );
    println!(
        "  prefix-cache hits    {:.0}% of prompt tokens",
        outcome.kv_hit_rate * 100.0
    );
    println!(
        "  peak KV footprint    {:.2} GiB",
        outcome.kv_peak_bytes as f64 / (1u64 << 30) as f64
    );
    println!("  energy               {:.3} Wh", outcome.energy_wh);
    println!(
        "  task outcome         {} after {} iterations",
        if trace.outcome.solved {
            "solved"
        } else {
            "failed"
        },
        trace.outcome.iterations
    );

    // Contrast with the single-turn baseline the paper uses throughout —
    // averaged over a few tasks so one lucky draw doesn't mislead.
    let mean_wh = |kind: AgentKind| {
        let batch = SingleRequest::new(kind, Benchmark::HotpotQa)
            .seed(42)
            .run_batch(10);
        batch.iter().map(|o| o.energy_wh).sum::<f64>() / batch.len() as f64
    };
    let cot_wh = mean_wh(AgentKind::Cot);
    let reflexion_wh = mean_wh(AgentKind::Reflexion);
    println!(
        "\nAveraged over 10 tasks: CoT {:.2} Wh vs Reflexion {:.2} Wh per request — \
         dynamic reasoning costs {:.1}x the energy.",
        cot_wh,
        reflexion_wh,
        reflexion_wh / cot_wh
    );
}
