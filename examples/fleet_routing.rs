//! Fleet routing: serve agent traffic on a multi-replica fleet and
//! compare routing policies. The punchline: stateless load balancing
//! quietly destroys the prefix-cache reuse that makes agent serving
//! affordable — iterative calls must return to the replica that holds
//! their history.
//!
//! ```sh
//! cargo run --release --example fleet_routing
//! ```

use agent_infra_sim::prelude::*;
use agentsim_serving::{FleetConfig, FleetSim, Routing};

fn main() {
    let replicas = 4;
    let qps = 6.0;
    let requests = 150;

    println!(
        "ReAct/HotpotQA on {replicas}x A100/8B replicas at {qps} QPS \
         ({requests} requests)\n"
    );

    let mut table = Table::with_columns(&[
        "routing",
        "tput",
        "p50 s",
        "p95 s",
        "hit rate",
        "energy Wh",
        "util (min..max)",
    ]);
    for routing in [
        Routing::SessionAffinity,
        Routing::LeastLoaded,
        Routing::RoundRobin,
    ] {
        let report =
            FleetSim::new(FleetConfig::react_hotpotqa(replicas, routing, qps, requests).seed(17))
                .run();
        let umin = report.utilization.iter().copied().fold(1.0f64, f64::min);
        let umax = report.utilization.iter().copied().fold(0.0f64, f64::max);
        table.row(vec![
            routing.to_string(),
            format!("{:.2}", report.throughput),
            format!("{:.1}", report.p50_s),
            format!("{:.1}", report.p95_s),
            format!("{:.2}", report.kv_hit_rate),
            format!("{:.1}", report.energy_wh),
            format!("{umin:.2}..{umax:.2}"),
        ]);
    }
    println!("{table}");
    println!(
        "Session affinity keeps each session's iterative calls on one replica, \
         preserving the cross-call prefix hits the paper's Fig. 15 shows are \
         worth multiples of serving capacity. Round-robin balances load \
         perfectly — and recomputes every context from scratch."
    );
}
