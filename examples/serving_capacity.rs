//! Serving capacity: sweep offered load for a conventional chatbot
//! workload vs an agentic one and find each knee — the paper's Fig. 14
//! experiment, plus the prefix-caching ablation of its Fig. 15.
//!
//! ```sh
//! cargo run --release --example serving_capacity
//! ```

use agent_infra_sim::prelude::*;

fn sweep_and_print(
    name: &str,
    engine: &EngineConfig,
    workload: &ServingWorkload,
    points: &[f64],
    requests: u64,
) -> f64 {
    let sweep = qps_sweep(engine, workload, points, requests, 11);
    let mut table = Table::with_columns(&["offered QPS", "achieved", "p50 s", "p95 s", "hit %"]);
    for p in &sweep {
        table.row(vec![
            format!("{:.2}", p.qps),
            format!("{:.2}", p.report.throughput()),
            format!("{:.1}", p.report.p50_s),
            format!("{:.1}", p.report.p95_s),
            format!("{:.0}", p.report.kv_hit_rate * 100.0),
        ]);
    }
    println!("--- {name}\n{table}");
    let peak = peak_throughput(&sweep);
    println!("peak throughput: {peak:.2} QPS\n");
    peak
}

fn main() {
    let requests = 120;
    let engine = EngineConfig::a100_llama8b();
    let agent = ServingWorkload::Agent {
        kind: AgentKind::React,
        benchmark: Benchmark::HotpotQa,
        config: AgentConfig::default_8b(),
    };

    println!("One A100-40GB serving Llama-3.1-8B, {requests} requests per point.\n");

    let chatbot_peak = sweep_and_print(
        "ShareGPT chatbot (single-turn)",
        &engine,
        &ServingWorkload::Chatbot,
        &[1.0, 2.0, 4.0, 6.0, 8.0, 12.0],
        requests,
    );
    let agent_peak = sweep_and_print(
        "ReAct agent on HotpotQA",
        &engine,
        &agent,
        &[0.5, 1.0, 2.0, 3.0, 4.0, 6.0],
        requests,
    );

    println!(
        "The chatbot sustains {:.1}x the request rate of the agent \
         (paper: 6.4 vs 2.6 QPS).\n",
        chatbot_peak / agent_peak
    );

    // The Fig. 15 ablation: how much of the agent's capacity is owed to
    // prefix caching?
    let no_cache = sweep_and_print(
        "ReAct agent on HotpotQA, prefix caching DISABLED",
        &engine.clone().with_prefix_caching(false),
        &agent,
        &[0.5, 1.0, 2.0, 3.0, 4.0],
        requests,
    );
    println!(
        "Prefix caching multiplies agent serving capacity by {:.1}x \
         (paper: 5.62x).",
        agent_peak / no_cache
    );
}
