//! Failure drill: inject tool failures at increasing rates and watch the
//! agent degrade — accuracy, latency, and wasted energy. Agents never
//! wedge: a failed call lands a short error observation in the context
//! and the workflow retries or re-plans.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use agent_infra_sim::prelude::*;
use agentsim_serving::SingleRequest;
use agentsim_tools::{FailurePolicy, ToolExecutor};

const SAMPLES: u64 = 30;

fn drill(kind: AgentKind, rate_multiplier: f64) -> (f64, f64, f64, f64) {
    let tools = ToolExecutor::new().failure_policy(FailurePolicy {
        rate_multiplier,
        failure_latency_multiplier: 2.5, // timeouts take longer than successes
    });
    let outcomes = SingleRequest::new(kind, Benchmark::HotpotQa)
        .seed(13)
        .tool_executor(tools)
        .run_batch(SAMPLES);
    let n = outcomes.len() as f64;
    let accuracy = outcomes.iter().filter(|o| o.trace.outcome.solved).count() as f64 / n;
    let latency = outcomes
        .iter()
        .map(|o| o.trace.e2e().as_secs_f64())
        .sum::<f64>()
        / n;
    let energy = outcomes.iter().map(|o| o.energy_wh).sum::<f64>() / n;
    let failed_calls = outcomes
        .iter()
        .map(|o| o.trace.tools.iter().filter(|t| t.failed).count() as f64)
        .sum::<f64>()
        / n;
    (accuracy, latency, energy, failed_calls)
}

fn main() {
    // Base failure rates are ~1% (Wikipedia); multipliers scale them.
    let multipliers = [0.0, 1.0, 10.0, 30.0, 100.0];

    for kind in [AgentKind::React, AgentKind::LlmCompiler] {
        let mut table = Table::with_columns(&[
            "failure rate",
            "accuracy",
            "latency s",
            "Wh/query",
            "failed calls/req",
        ]);
        for &m in &multipliers {
            let (acc, lat, wh, failed) = drill(kind, m);
            table.row(vec![
                format!("{:.0}%", m * 1.0), // base rate is ~1%
                format!("{acc:.2}"),
                format!("{lat:.1}"),
                format!("{wh:.2}"),
                format!("{failed:.1}"),
            ]);
        }
        println!("=== {kind} on HotpotQA under Wikipedia failures\n{table}");
    }

    println!(
        "Takeaway: tool failures waste the whole iteration that issued them — \
         the agent pays the (slower) failed call, re-thinks, and retries, so \
         infrastructure cost rises exactly as task success falls."
    );
}
