//! Design-space exploration: sweep agent configurations on one benchmark
//! and print the accuracy/cost frontier — the paper's Fig. 18 analysis,
//! exposed as a library workflow you can adapt to your own agent designs.
//!
//! ```sh
//! cargo run --release --example design_space [benchmark]
//! ```
//! where `benchmark` is one of `hotpotqa`, `webshop`, `math`, `humaneval`
//! (default: hotpotqa).

use agent_infra_sim::prelude::*;
use agentsim_serving::SingleRequest;

const SAMPLES: u64 = 30;

struct Point {
    label: String,
    accuracy: f64,
    latency_s: f64,
    pflops: f64,
}

fn measure(kind: AgentKind, benchmark: Benchmark, label: &str, config: AgentConfig) -> Point {
    let outcomes = SingleRequest::new(kind, benchmark)
        .seed(3)
        .agent_config(config)
        .run_batch(SAMPLES);
    let n = outcomes.len() as f64;
    Point {
        label: label.to_string(),
        accuracy: outcomes.iter().filter(|o| o.trace.outcome.solved).count() as f64 / n,
        latency_s: outcomes
            .iter()
            .map(|o| o.trace.e2e().as_secs_f64())
            .sum::<f64>()
            / n,
        pflops: outcomes.iter().map(|o| o.flops).sum::<f64>() / n / 1e15,
    }
}

fn parse_benchmark(arg: Option<String>) -> Benchmark {
    match arg.as_deref() {
        Some("webshop") => Benchmark::WebShop,
        Some("math") => Benchmark::Math,
        Some("humaneval") => Benchmark::HumanEval,
        Some("hotpotqa") | None => Benchmark::HotpotQa,
        Some(other) => {
            eprintln!("unknown benchmark `{other}`; using hotpotqa");
            Benchmark::HotpotQa
        }
    }
}

fn main() {
    let benchmark = parse_benchmark(std::env::args().nth(1));
    let base = AgentConfig::default_8b();

    let candidates: Vec<(AgentKind, String, AgentConfig)> = vec![
        (AgentKind::Cot, "CoT".into(), base),
        (
            AgentKind::React,
            "ReAct it=3".into(),
            base.with_max_iterations(3),
        ),
        (AgentKind::React, "ReAct it=7".into(), base),
        (
            AgentKind::React,
            "ReAct it=12".into(),
            base.with_max_iterations(12),
        ),
        (
            AgentKind::Reflexion,
            "Reflexion t=2".into(),
            base.with_max_trials(2),
        ),
        (
            AgentKind::Reflexion,
            "Reflexion t=4".into(),
            base.with_max_trials(4),
        ),
        (
            AgentKind::Lats,
            "LATS c=3".into(),
            base.with_lats_children(3),
        ),
        (
            AgentKind::Lats,
            "LATS c=8".into(),
            base.with_lats_children(8),
        ),
        (AgentKind::LlmCompiler, "LLMCompiler".into(), base),
    ];

    let mut points: Vec<Point> = candidates
        .into_iter()
        .filter(|(kind, _, _)| kind.supports(benchmark))
        .map(|(kind, label, config)| measure(kind, benchmark, &label, config))
        .collect();

    let mut table = Table::with_columns(&[
        "design",
        "accuracy",
        "latency s",
        "PFLOPs",
        "acc/s",
        "acc/PFLOP",
        "pareto",
    ]);
    points.sort_by(|a, b| a.latency_s.partial_cmp(&b.latency_s).expect("finite"));
    for p in &points {
        // A point is Pareto-optimal if no other point has both higher
        // accuracy and lower latency.
        let on_frontier = !points
            .iter()
            .any(|q| q.accuracy > p.accuracy && q.latency_s < p.latency_s);
        table.row(vec![
            p.label.clone(),
            format!("{:.2}", p.accuracy),
            format!("{:.1}", p.latency_s),
            format!("{:.2}", p.pflops),
            format!("{:.4}", p.accuracy / p.latency_s.max(1e-9)),
            format!("{:.3}", p.accuracy / p.pflops.max(1e-9)),
            if on_frontier { "*" } else { "" }.to_string(),
        ]);
    }

    println!("Design space on {benchmark} ({SAMPLES} tasks/point, 8B backend):\n");
    println!("{table}");
    println!("(*) = on the accuracy-latency Pareto frontier.");
    println!(
        "\nPaper's takeaway: accuracy improves with compute but with sharply \
         diminishing returns — pick configurations near the frontier, not \
         at maximum scale."
    );
}
