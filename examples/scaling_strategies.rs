//! Test-time scaling strategies and their infrastructure bill: sequential
//! (Reflexion reflection depth) vs parallel (LATS expansion width), on
//! both model sizes, ending with the paper's Table III datacenter power
//! projection.
//!
//! ```sh
//! cargo run --release --example scaling_strategies
//! ```

use agent_infra_sim::prelude::*;
use agentsim_metrics::power::{
    format_watts, PowerProjection, CHATGPT_QUERIES_PER_DAY, GOOGLE_QUERIES_PER_DAY,
};
use agentsim_serving::SingleRequest;

const SAMPLES: u64 = 30;

fn measure(kind: AgentKind, engine: &EngineConfig, config: AgentConfig) -> (f64, f64, f64) {
    let outcomes = SingleRequest::new(kind, Benchmark::HotpotQa)
        .seed(5)
        .engine_config(engine.clone())
        .agent_config(config)
        .run_batch(SAMPLES);
    let n = outcomes.len() as f64;
    let acc = outcomes.iter().filter(|o| o.trace.outcome.solved).count() as f64 / n;
    let lat = outcomes
        .iter()
        .map(|o| o.trace.e2e().as_secs_f64())
        .sum::<f64>()
        / n;
    let wh = outcomes.iter().map(|o| o.energy_wh).sum::<f64>() / n;
    (acc, lat, wh)
}

fn main() {
    for (model, engine, base) in [
        (
            "Llama-3.1-8B on 1x A100",
            EngineConfig::a100_llama8b(),
            AgentConfig::default_8b(),
        ),
        (
            "Llama-3.1-70B on 8x A100",
            EngineConfig::a100x8_llama70b(),
            AgentConfig::default_70b(),
        ),
    ] {
        println!("==== {model} ====\n");

        let mut seq =
            Table::with_columns(&["reflection trials", "accuracy", "latency s", "Wh/query"]);
        for trials in [1u32, 2, 4, 6] {
            let (acc, lat, wh) = measure(
                AgentKind::Reflexion,
                &engine,
                base.with_max_trials(trials).with_max_iterations(10),
            );
            seq.row(vec![
                trials.to_string(),
                format!("{acc:.2}"),
                format!("{lat:.1}"),
                format!("{wh:.2}"),
            ]);
        }
        println!("Sequential scaling (Reflexion):\n{seq}");

        let mut par = Table::with_columns(&["LATS children", "accuracy", "latency s", "Wh/query"]);
        for children in [1u32, 2, 4, 8, 16] {
            let (acc, lat, wh) = measure(
                AgentKind::Lats,
                &engine,
                base.with_lats_children(children).with_lats_iterations(12),
            );
            par.row(vec![
                children.to_string(),
                format!("{acc:.2}"),
                format!("{lat:.1}"),
                format!("{wh:.2}"),
            ]);
        }
        println!("Parallel scaling (LATS):\n{par}");
    }

    // Datacenter arithmetic (Table III): take one representative agentic
    // energy figure and project.
    let (_, _, wh) = measure(
        AgentKind::Lats,
        &EngineConfig::a100_llama8b(),
        AgentConfig::default_8b()
            .with_lats_children(8)
            .with_lats_iterations(12),
    );
    let projection = PowerProjection::new(wh);
    println!("==== Datacenter projection for LATS/8B at {wh:.2} Wh/query ====");
    println!(
        "  today's ChatGPT traffic (71.4M queries/day):  {}",
        format_watts(projection.watts(CHATGPT_QUERIES_PER_DAY))
    );
    println!(
        "  Google-search-scale traffic (13.7B/day):      {}",
        format_watts(projection.watts(GOOGLE_QUERIES_PER_DAY))
    );
    println!(
        "  daily energy at search scale:                 {:.1} GWh/day",
        projection.gwh_per_day(GOOGLE_QUERIES_PER_DAY)
    );
}
